package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// Key canonicalizes v into a content address: the sha256 of its JSON
// encoding. encoding/json sorts map keys, so maps with identical
// contents hash identically regardless of insertion order. Callers
// hash a fully-resolved value (defaults applied, observational fields
// stripped) so that configurations that simulate identically address
// the same cache slot.
func Key(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("experiment: hashing: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Cache is a content-addressed store of completed run results keyed
// by canonical config hash. It is safe for concurrent use. A session
// cache lets studies that share runs (notably round-robin baselines)
// simulate each distinct configuration exactly once.
type Cache struct {
	mu      sync.Mutex
	store   map[string]any
	enabled bool
	hits    uint64
	misses  uint64
}

// NewCache returns an empty, enabled cache.
func NewCache() *Cache {
	return &Cache{store: make(map[string]any), enabled: true}
}

// SetEnabled toggles the cache. While disabled, Plan dedups nothing
// and Commit stores nothing, so every requested run executes — the
// behavior studies had before the cache existed.
func (c *Cache) SetEnabled(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enabled = on
}

// Enabled reports whether the cache is active.
func (c *Cache) Enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enabled
}

// Reset drops all stored results and zeroes the hit/miss counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = make(map[string]any)
	c.hits, c.misses = 0, 0
}

// Len returns the number of stored results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.store)
}

// Stats returns the cumulative hit and miss counts since the last
// Reset. A hit is a requested run that did not need to execute —
// answered from the store or deduplicated against an identical run in
// the same batch; a miss is a run that actually executed.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Plan describes how to satisfy one batch of keyed requests: Run
// lists the request indices that must actually execute (first
// occurrence of each missing key, in request order), and source maps
// every request index to either -1 (answered from cache; cached[i]
// holds the result) or a position in Run.
type Plan struct {
	Run    []int
	source []int
	cached []any
	keys   []string
}

// Misses returns how many of the batch's requests must execute.
func (p *Plan) Misses() int { return len(p.Run) }

// Plan computes the dedup plan for the given keys. With the cache
// disabled the plan is the identity: every request runs, nothing is
// deduplicated, so disabled-cache executions match the pre-cache
// code paths run for run.
func (c *Cache) Plan(keys []string) *Plan {
	p := &Plan{
		source: make([]int, len(keys)),
		cached: make([]any, len(keys)),
		keys:   keys,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		p.Run = make([]int, len(keys))
		for i := range keys {
			p.Run[i] = i
			p.source[i] = i
			c.misses++
		}
		return p
	}
	firstRun := make(map[string]int, len(keys))
	for i, k := range keys {
		if v, ok := c.store[k]; ok {
			p.source[i] = -1
			p.cached[i] = v
			c.hits++
			continue
		}
		if at, ok := firstRun[k]; ok {
			p.source[i] = at
			c.hits++
			continue
		}
		c.misses++
		firstRun[k] = len(p.Run)
		p.source[i] = len(p.Run)
		p.Run = append(p.Run, i)
	}
	return p
}

// Commit merges freshly-executed results back into the batch and, if
// the cache is enabled, stores them for future sessions of the same
// process. fresh must align with plan.Run; nil entries (failed runs)
// are passed through but never cached. The returned slice aligns with
// the original request keys.
func (c *Cache) Commit(p *Plan, fresh []any) []any {
	if len(fresh) != len(p.Run) {
		panic(fmt.Sprintf("experiment: Commit got %d results for %d planned runs", len(fresh), len(p.Run)))
	}
	out := make([]any, len(p.source))
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, src := range p.source {
		if src < 0 {
			out[i] = p.cached[i]
			continue
		}
		out[i] = fresh[src]
		if c.enabled && fresh[src] != nil {
			c.store[p.keys[i]] = fresh[src]
		}
	}
	return out
}
