package experiment

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func validSpec() Spec {
	return Spec{
		Name: "gv-sweep",
		Base: Settings{"servers": 8, "policy": "vmt-ta"},
		Axes: []Axis{
			{Name: "gv", Values: []any{16.0, 20.0, 24.0}},
			{Name: "seed", Values: []any{1.0, 2.0}},
		},
		Baseline: &Baseline{
			Set:  Settings{"policy": "rr", "gv": 0.0},
			Vary: []string{"seed"},
		},
		Reducer: ReducePeakReduction,
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "needs a name"},
		{"bad reducer", func(s *Spec) { s.Reducer = "nope" }, "unknown reducer"},
		{"empty axis", func(s *Spec) { s.Axes[0].Values = nil }, "has no values"},
		{"mixed axis", func(s *Spec) {
			s.Axes[0].Cases = []Case{{Name: "a", Set: Settings{}}}
		}, "mixes scalar values and cases"},
		{"dup axis", func(s *Spec) { s.Axes[1].Name = "gv" }, "duplicate axis"},
		{"no baseline", func(s *Spec) { s.Baseline = nil }, "needs a baseline"},
		{"bad vary", func(s *Spec) { s.Baseline.Vary = []string{"ghost"} }, "unknown axis"},
		{"mean without axes", func(s *Spec) { s.Reducer = ReducePeakReductionMean }, "needs mean_over"},
		{"best without axis", func(s *Spec) { s.Reducer = ReducePeakReductionBest }, "needs a best_over"},
		{"bad best_over", func(s *Spec) {
			s.Reducer = ReducePeakReductionBest
			s.BestOver = "ghost"
		}, "unknown axis"},
		{"dup case", func(s *Spec) {
			s.Axes[0].Values = nil
			s.Axes[0].Cases = []Case{{Name: "x"}, {Name: "x"}}
		}, "duplicates case"},
	}
	for _, tc := range cases {
		s := validSpec()
		tc.mutate(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestSpecPointsGridOrder(t *testing.T) {
	s := validSpec()
	pts := s.Points()
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	// Last axis (seed) varies fastest.
	wantLabels := []map[string]any{
		{"gv": 16.0, "seed": 1.0},
		{"gv": 16.0, "seed": 2.0},
		{"gv": 20.0, "seed": 1.0},
		{"gv": 20.0, "seed": 2.0},
		{"gv": 24.0, "seed": 1.0},
		{"gv": 24.0, "seed": 2.0},
	}
	for i, p := range pts {
		if p.Index != i {
			t.Errorf("point %d has Index %d", i, p.Index)
		}
		if !reflect.DeepEqual(p.Labels, wantLabels[i]) {
			t.Errorf("point %d labels = %v, want %v", i, p.Labels, wantLabels[i])
		}
		if p.Settings["servers"] != 8 || p.Settings["policy"] != "vmt-ta" {
			t.Errorf("point %d lost base settings: %v", i, p.Settings)
		}
		if p.Settings["gv"] != p.Labels["gv"] {
			t.Errorf("point %d setting gv = %v, label %v", i, p.Settings["gv"], p.Labels["gv"])
		}
	}
}

func TestSpecCaseAxis(t *testing.T) {
	s := Spec{
		Name: "ablation",
		Base: Settings{"servers": 8.0},
		Axes: []Axis{{Name: "variant", Cases: []Case{
			{Name: "ta", Set: Settings{"policy": "vmt-ta", "gv": 22.0}},
			{Name: "wa", Set: Settings{"policy": "vmt-wa", "gv": 22.0, "wax_threshold": 0.9}},
		}}},
		Baseline: &Baseline{Set: Settings{"policy": "rr", "gv": 0.0}},
		Reducer:  ReducePeakReduction,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[0].Labels["variant"] != "ta" || pts[1].Labels["variant"] != "wa" {
		t.Errorf("case labels wrong: %v %v", pts[0].Labels, pts[1].Labels)
	}
	if pts[1].Settings["wax_threshold"] != 0.9 || pts[1].Settings["policy"] != "vmt-wa" {
		t.Errorf("case overlay not applied: %v", pts[1].Settings)
	}
	if _, ok := pts[0].Settings["wax_threshold"]; ok {
		t.Errorf("case ta leaked wax_threshold: %v", pts[0].Settings)
	}
}

func TestBaselinePointsAndIndex(t *testing.T) {
	s := validSpec()
	pts := s.Points()
	bases := s.BaselinePoints()
	// Baseline varies only over seed: two baselines.
	if len(bases) != 2 {
		t.Fatalf("got %d baselines, want 2", len(bases))
	}
	for i, b := range bases {
		if b.Settings["policy"] != "rr" || b.Settings["gv"] != 0.0 {
			t.Errorf("baseline %d missing Set overlay: %v", i, b.Settings)
		}
		if _, ok := b.Labels["gv"]; ok {
			t.Errorf("baseline %d carries dropped axis label: %v", i, b.Labels)
		}
	}
	idx, err := s.BaselineIndex(pts, bases)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if bases[idx[i]].Labels["seed"] != p.Labels["seed"] {
			t.Errorf("point %d (seed %v) matched baseline seed %v",
				i, p.Labels["seed"], bases[idx[i]].Labels["seed"])
		}
	}
}

func TestBaselineNoVary(t *testing.T) {
	s := validSpec()
	s.Baseline.Vary = nil
	bases := s.BaselinePoints()
	if len(bases) != 1 {
		t.Fatalf("got %d baselines, want 1", len(bases))
	}
	idx, err := s.BaselineIndex(s.Points(), bases)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range idx {
		if b != 0 {
			t.Errorf("point %d matched baseline %d, want 0", i, b)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := validSpec()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// JSON turns ints into float64; compare the expansions, which is
	// what execution consumes.
	a, b := s.Points(), got.Points()
	if len(a) != len(b) {
		t.Fatalf("round trip changed point count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Labels, b[i].Labels) {
			t.Errorf("point %d labels changed: %v vs %v", i, a[i].Labels, b[i].Labels)
		}
	}
	if got.Reducer != s.Reducer || got.Name != s.Name {
		t.Errorf("round trip changed identity: %+v", got)
	}
}

func TestDecodeSpecRejectsUnknownFields(t *testing.T) {
	_, err := DecodeSpec(strings.NewReader(`{"name":"x","reducer":"peak_reduction","basline":{}}`))
	if err == nil {
		t.Fatal("typo'd field accepted")
	}
}

func TestKeyCanonical(t *testing.T) {
	a, err := Key(map[string]any{"x": 1.0, "y": "s"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Key(map[string]any{"y": "s", "x": 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("map key order changed hash: %s vs %s", a, b)
	}
	c, _ := Key(map[string]any{"x": 2.0, "y": "s"})
	if a == c {
		t.Error("distinct values collided")
	}
	if len(a) != 64 {
		t.Errorf("key is not sha256 hex: %q", a)
	}
}
