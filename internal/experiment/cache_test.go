package experiment

import (
	"fmt"
	"sync"
	"testing"
)

func TestCachePlanDedup(t *testing.T) {
	c := NewCache()
	keys := []string{"a", "b", "a", "c", "b"}
	p := c.Plan(keys)
	if got := p.Misses(); got != 3 {
		t.Fatalf("Misses = %d, want 3 (a, b, c)", got)
	}
	if p.Run[0] != 0 || p.Run[1] != 1 || p.Run[2] != 3 {
		t.Fatalf("Run = %v, want first occurrences [0 1 3]", p.Run)
	}
	out := c.Commit(p, []any{"ra", "rb", "rc"})
	want := []any{"ra", "rb", "ra", "rc", "rb"}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	// Second batch: everything hits.
	p2 := c.Plan([]string{"c", "a"})
	if p2.Misses() != 0 {
		t.Fatalf("second plan misses %d, want 0", p2.Misses())
	}
	out2 := c.Commit(p2, nil)
	if out2[0] != "rc" || out2[1] != "ra" {
		t.Errorf("cached results wrong: %v", out2)
	}
	// First batch: 2 intra-batch dupes; second batch: 2 store hits.
	hits, misses := c.Stats()
	if hits != 4 || misses != 3 {
		t.Errorf("Stats = %d hits %d misses, want 4/3", hits, misses)
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

func TestCacheDisabledIsIdentity(t *testing.T) {
	c := NewCache()
	c.SetEnabled(false)
	if c.Enabled() {
		t.Fatal("SetEnabled(false) did not stick")
	}
	keys := []string{"a", "a", "b"}
	p := c.Plan(keys)
	if p.Misses() != 3 {
		t.Fatalf("disabled cache deduped: Misses = %d, want 3", p.Misses())
	}
	out := c.Commit(p, []any{1, 2, 3})
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Errorf("identity commit broken: %v", out)
	}
	if c.Len() != 0 {
		t.Errorf("disabled cache stored %d results", c.Len())
	}
	// Re-enable: previous batch must not have leaked in.
	c.SetEnabled(true)
	if p := c.Plan([]string{"a"}); p.Misses() != 1 {
		t.Error("disabled batch leaked into store")
	}
}

func TestCacheNilFreshNotStored(t *testing.T) {
	c := NewCache()
	p := c.Plan([]string{"fail", "ok"})
	out := c.Commit(p, []any{nil, "r"})
	if out[0] != nil || out[1] != "r" {
		t.Fatalf("commit mangled results: %v", out)
	}
	if c.Len() != 1 {
		t.Fatalf("nil result cached: Len = %d, want 1", c.Len())
	}
	if p := c.Plan([]string{"fail"}); p.Misses() != 1 {
		t.Error("failed run served from cache")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache()
	c.Commit(c.Plan([]string{"a"}), []any{"r"})
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset kept entries")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("Reset kept counters: %d/%d", h, m)
	}
}

func TestCacheCommitMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Commit did not panic")
		}
	}()
	c := NewCache()
	c.Commit(c.Plan([]string{"a"}), nil)
}

// TestCacheConcurrent exercises Plan/Commit/Stats/Len from many
// goroutines; run under -race in scripts/check.sh.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				keys := []string{
					fmt.Sprintf("k%d", i%7),
					fmt.Sprintf("k%d", (i+g)%7),
				}
				p := c.Plan(keys)
				fresh := make([]any, p.Misses())
				for j, at := range p.Run {
					fresh[j] = keys[at]
				}
				out := c.Commit(p, fresh)
				for j, v := range out {
					if v != keys[j] {
						t.Errorf("goroutine %d: out[%d] = %v, want %v", g, j, v, keys[j])
						return
					}
				}
				c.Stats()
				c.Len()
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 7 {
		t.Errorf("store grew beyond key space: %d", c.Len())
	}
}
