package sched

import (
	"testing"
	"time"

	"vmt/internal/cluster"
	"vmt/internal/telemetry"
	"vmt/internal/workload"
)

// lyingReports is a test ReportFilter: a Byzantine server offsetting
// its claimed utilization and melt fraction inside [0, 1].
type lyingReports struct {
	du, dm float64
}

func (l *lyingReports) clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func (l *lyingReports) FilterUtilization(u float64) float64 { return l.clamp(u + l.du) }
func (l *lyingReports) FilterMeltFrac(m float64) float64    { return l.clamp(m + l.dm) }

func newGuardFixture(t *testing.T, n int) (*cluster.Cluster, *Guard, *telemetry.Registry) {
	t.Helper()
	c := newCluster(t, n)
	// A moderate honest load: a mixed-power pair on every server, well
	// below the nameplate peak so the power cross-check is live.
	for i := 0; i < n; i++ {
		for j := 0; j < 2; j++ {
			if err := c.Server(i).Place(workload.WebSearch); err != nil {
				t.Fatal(err)
			}
			if err := c.Server(i).Place(workload.VirusScan); err != nil {
				t.Fatal(err)
			}
		}
	}
	reg := telemetry.NewRegistry()
	return c, NewGuard(c, workload.PaperMix(), time.Minute, reg), reg
}

// TestGuardHonestServersNeverQuarantined: truthful reports under any
// mix of mix workloads stay inside the physical envelope — zero
// strikes, zero quarantines, over many ticks.
func TestGuardHonestServersNeverQuarantined(t *testing.T) {
	c, g, reg := newGuardFixture(t, 4)
	for tick := 0; tick < 50; tick++ {
		g.Tick(time.Duration(tick) * time.Minute)
	}
	if g.Quarantined() != 0 {
		t.Fatalf("honest cluster: %d quarantine transitions", g.Quarantined())
	}
	if got := reg.Counter("sched_reports_quarantined").Value(); got != 0 {
		t.Fatalf("sched_reports_quarantined = %d, want 0", got)
	}
	for i := 0; i < c.Len(); i++ {
		if c.Server(i).ReportsQuarantined() {
			t.Fatalf("server %d quarantined without lying", i)
		}
	}
}

// TestGuardQuarantinesUtilizationLiar: a server under-reporting its
// utilization while drawing honest power is physically inconsistent;
// the guard quarantines it after guardStrikeLimit strikes and releases
// it after a clean window once the lie stops.
func TestGuardQuarantinesUtilizationLiar(t *testing.T) {
	c, g, reg := newGuardFixture(t, 4)
	liar := c.Server(1)
	lie := &lyingReports{du: -0.9}
	liar.SetReportFilter(lie)
	for tick := 0; tick < guardStrikeLimit; tick++ {
		if liar.ReportsQuarantined() {
			t.Fatalf("quarantined after only %d strikes", tick)
		}
		g.Tick(time.Duration(tick) * time.Minute)
	}
	if !liar.ReportsQuarantined() {
		t.Fatal("utilization liar not quarantined after the strike limit")
	}
	if g.Quarantined() != 1 {
		t.Fatalf("Quarantined() = %d, want 1", g.Quarantined())
	}
	if got := reg.Counter("sched_reports_quarantined").Value(); got != 1 {
		t.Fatalf("sched_reports_quarantined = %d, want 1", got)
	}
	for i := 0; i < c.Len(); i++ {
		if i != 1 && c.Server(i).ReportsQuarantined() {
			t.Fatalf("honest server %d swept up in the quarantine", i)
		}
	}
	// The lie stops; a full clean window releases the reports.
	liar.SetReportFilter(nil)
	for tick := 0; tick < guardCleanWindow; tick++ {
		g.Tick(time.Duration(100+tick) * time.Minute)
	}
	if liar.ReportsQuarantined() {
		t.Fatal("reformed liar still quarantined after a clean window")
	}
	if g.Quarantined() != 1 {
		t.Fatalf("release should not count as a new transition, Quarantined() = %d", g.Quarantined())
	}
}

// TestGuardQuarantinesMeltSlewLiar: a reported melt fraction slewing
// faster than the conductance ceiling is implausible even though every
// individual value is in [0, 1].
func TestGuardQuarantinesMeltSlewLiar(t *testing.T) {
	c, g, _ := newGuardFixture(t, 4)
	liar := c.Server(2)
	lie := &lyingReports{}
	liar.SetReportFilter(lie)
	g.Tick(0) // baseline tick: the first report only anchors lastMelt
	for tick := 1; tick <= guardStrikeLimit; tick++ {
		// Flip the reported fraction by far more than the per-minute
		// physical ceiling every tick.
		if tick%2 == 1 {
			lie.dm = 0.9
		} else {
			lie.dm = 0
		}
		g.Tick(time.Duration(tick) * time.Minute)
	}
	if !liar.ReportsQuarantined() {
		t.Fatal("melt-slew liar not quarantined after the strike limit")
	}
	if g.Quarantined() != 1 {
		t.Fatalf("Quarantined() = %d, want 1", g.Quarantined())
	}
}

// TestGuardForgivesCrashRepairJump: the melt baseline resets across a
// crash/repair, so the estimator's legitimate re-anchor jump after
// repair is never scored as a violation.
func TestGuardForgivesCrashRepairJump(t *testing.T) {
	c, g, _ := newGuardFixture(t, 4)
	s := c.Server(3)
	g.Tick(0)
	c.MarkFailed(3)
	g.Tick(1 * time.Minute)
	c.MarkRepaired(3)
	// However far the estimate moved across the outage, the first
	// post-repair report only re-anchors the baseline.
	for tick := 2; tick < 20; tick++ {
		g.Tick(time.Duration(tick) * time.Minute)
	}
	if s.ReportsQuarantined() || g.Quarantined() != 0 {
		t.Fatalf("crash/repair cycle scored as a violation: %d transitions", g.Quarantined())
	}
}
