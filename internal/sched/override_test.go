package sched

import (
	"testing"
	"time"

	"vmt/internal/cluster"
	"vmt/internal/trace"
	"vmt/internal/workload"
)

func overrideCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.PaperCluster(n))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOverrideTransparentWithoutDirectives(t *testing.T) {
	a := overrideCluster(t, 4)
	b := overrideCluster(t, 4)
	plain := NewRoundRobin(a)
	wrapped, err := NewOverride(b, NewRoundRobin(b))
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Name() != plain.Name() {
		t.Fatalf("Name = %q, want %q", wrapped.Name(), plain.Name())
	}
	for i := 0; i < 40; i++ {
		sp, err1 := plain.Place(workload.WebSearch)
		sw, err2 := wrapped.Place(workload.WebSearch)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("placement %d: errors diverge: %v vs %v", i, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if sp.ID() != sw.ID() {
			t.Fatalf("placement %d: plain chose %d, wrapped chose %d", i, sp.ID(), sw.ID())
		}
		if err := sp.Place(workload.WebSearch); err != nil {
			t.Fatal(err)
		}
		if err := sw.Place(workload.WebSearch); err != nil {
			t.Fatal(err)
		}
	}
	if wrapped.Overridden() != 0 || wrapped.Rejected() != 0 {
		t.Fatalf("transparent override counted %d/%d", wrapped.Overridden(), wrapped.Rejected())
	}
}

func TestOverrideDirectiveWinsOnce(t *testing.T) {
	c := overrideCluster(t, 4)
	o, err := NewOverride(c, NewRoundRobin(c))
	if err != nil {
		t.Fatal(err)
	}
	o.Direct(workload.WebSearch.Name, 3)
	s, err := o.Place(workload.WebSearch)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 3 {
		t.Fatalf("directed placement landed on %d, want 3", s.ID())
	}
	// Directive consumed: next placement is the inner policy's choice
	// (round robin starts at 0).
	s, err = o.Place(workload.WebSearch)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 0 {
		t.Fatalf("post-directive placement landed on %d, want 0", s.ID())
	}
	if o.Overridden() != 1 {
		t.Fatalf("Overridden = %d, want 1", o.Overridden())
	}
}

func TestOverrideDirectiveMatchesWorkload(t *testing.T) {
	c := overrideCluster(t, 4)
	o, err := NewOverride(c, NewRoundRobin(c))
	if err != nil {
		t.Fatal(err)
	}
	o.Direct(workload.Clustering.Name, 2)
	// A WebSearch placement must not consume the Clustering directive.
	s, err := o.Place(workload.WebSearch)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() == 2 && o.Overridden() != 0 {
		t.Fatalf("WebSearch consumed the Clustering directive")
	}
	s, err = o.Place(workload.Clustering)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 2 {
		t.Fatalf("Clustering placement landed on %d, want 2", s.ID())
	}
}

func TestOverrideRejectsInvalidTargets(t *testing.T) {
	c := overrideCluster(t, 2)
	o, err := NewOverride(c, NewRoundRobin(c))
	if err != nil {
		t.Fatal(err)
	}
	o.Direct(workload.WebSearch.Name, 99) // out of range
	s, err := o.Place(workload.WebSearch)
	if err != nil {
		t.Fatal(err)
	}
	if o.Rejected() != 1 {
		t.Fatalf("Rejected = %d, want 1", o.Rejected())
	}
	if s.ID() != 0 {
		t.Fatalf("fallback placement landed on %d, want inner's 0", s.ID())
	}

	// A full server is rejected too.
	full := c.Server(1)
	for full.FreeCores() > 0 {
		if err := full.Place(workload.VirusScan); err != nil {
			t.Fatal(err)
		}
	}
	o.Direct(workload.WebSearch.Name, 1)
	if _, err := o.Place(workload.WebSearch); err != nil {
		t.Fatal(err)
	}
	if o.Rejected() != 2 {
		t.Fatalf("Rejected = %d, want 2", o.Rejected())
	}
}

func TestOverridePlacerForcesAndDefers(t *testing.T) {
	c := overrideCluster(t, 4)
	o, err := NewOverride(c, NewRoundRobin(c))
	if err != nil {
		t.Fatal(err)
	}
	o.SetPlacer(func(w workload.Workload) int {
		if w.Name == workload.WebSearch.Name {
			return 2
		}
		return -1 // defer everything else
	})
	s, err := o.Place(workload.WebSearch)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 2 {
		t.Fatalf("placer choice landed on %d, want 2", s.ID())
	}
	s, err = o.Place(workload.VirusScan)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 0 {
		t.Fatalf("deferred placement landed on %d, want inner's 0", s.ID())
	}
	o.SetPlacer(nil)
	if o.Overridden() != 1 {
		t.Fatalf("Overridden = %d, want 1", o.Overridden())
	}
}

func TestOverrideDrivesLoadManager(t *testing.T) {
	c := overrideCluster(t, 4)
	tr, err := trace.Generate(trace.Spec{
		Days: 1, PeakUtil: []float64{0.5}, TroughUtil: 0.3,
		PeakHours: []float64{12}, TroughHour: 3,
	}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOverride(c, NewRoundRobin(c))
	if err != nil {
		t.Fatal(err)
	}
	// Standing placer that funnels every placement onto server 1 while
	// it has room.
	o.SetPlacer(func(workload.Workload) int { return 1 })
	lm, err := NewLoadManager(c, workload.PaperMix(), tr, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := lm.Reconcile(0); err != nil {
		t.Fatal(err)
	}
	if o.Overridden() == 0 {
		t.Fatal("no placements were overridden")
	}
	if c.Server(1).BusyCores() == 0 {
		t.Fatal("funneled server received no jobs")
	}
}
