// Package sched defines the cluster scheduler interface and the two
// baseline placement policies the paper evaluates against: round robin
// (the TTS baseline) and coolest first (a thermal-aware load
// balancer). The VMT policies themselves live in internal/core.
package sched

import (
	"fmt"
	"time"

	"vmt/internal/cluster"
	"vmt/internal/workload"
)

// Scheduler decides where jobs are placed and removed. Implementations
// are bound to one cluster at construction and must be deterministic:
// given the same cluster state they return the same server.
type Scheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Place returns the server that should receive one new job of
	// workload w. The caller performs the placement. Place fails only
	// if the whole cluster is out of cores.
	Place(w workload.Workload) (*cluster.Server, error)
	// SelectRemoval returns the server from which one job of workload
	// w should be evicted when load falls. It fails only if no server
	// runs w.
	SelectRemoval(w workload.Workload) (*cluster.Server, error)
	// Tick runs once per scheduling period before any placements,
	// letting stateful policies (VMT-WA) refresh group assignments
	// from the reported wax state.
	Tick(now time.Duration)
}

// ErrNoCapacity is wrapped by Place when the cluster has no free core.
var ErrNoCapacity = fmt.Errorf("sched: cluster out of cores")

// ErrNoJob is wrapped by SelectRemoval when no server runs the
// workload.
var ErrNoJob = fmt.Errorf("sched: no job of requested workload")

// RoundRobin cycles each workload's placements across servers in ID
// order, the scheduler used by the prior TTS work. Cursors are
// per-workload: each service's queries are sharded evenly across the
// fleet (a shared cursor would phase-lock workloads onto disjoint
// server stripes and manufacture thermal imbalance round robin does
// not have in practice). Removals cycle independently so load stays
// even as it falls.
type RoundRobin struct {
	c         *cluster.Cluster
	placeCur  map[workload.Workload]int
	removeCur map[workload.Workload]int
}

// NewRoundRobin returns a round-robin scheduler bound to c.
func NewRoundRobin(c *cluster.Cluster) *RoundRobin {
	return &RoundRobin{
		c:         c,
		placeCur:  make(map[workload.Workload]int),
		removeCur: make(map[workload.Workload]int),
	}
}

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "round-robin" }

// Tick implements Scheduler (stateless per period).
func (r *RoundRobin) Tick(time.Duration) {}

// Place implements Scheduler: the workload's next server in rotation
// with a free core.
func (r *RoundRobin) Place(w workload.Workload) (*cluster.Server, error) {
	n := r.c.Len()
	cur := r.placeCur[w]
	for i := 0; i < n; i++ {
		s := r.c.Server((cur + i) % n)
		if s.FreeCores() > 0 {
			r.placeCur[w] = (s.ID() + 1) % n
			return s, nil
		}
	}
	return nil, ErrNoCapacity
}

// SelectRemoval implements Scheduler: the workload's next server in
// rotation running it.
func (r *RoundRobin) SelectRemoval(w workload.Workload) (*cluster.Server, error) {
	n := r.c.Len()
	wi := r.c.WorkloadIndex(w)
	cur := r.removeCur[w]
	for i := 0; i < n; i++ {
		s := r.c.Server((cur + i) % n)
		if s.JobsAt(wi) > 0 {
			r.removeCur[w] = (s.ID() + 1) % n
			return s, nil
		}
	}
	return nil, ErrNoJob
}

// CoolestFirst places each job on the server with the most projected
// thermal headroom and removes from the hottest server running the
// workload. It produces the tight temperature distribution of
// Figure 10 — and melts no more wax than round robin.
//
// "Coolest" is judged on the *projected* steady temperature implied by
// the server's current power draw, not the instantaneous sensor
// reading: sensors lag by the thermal time constant, and a scheduler
// ranking on raw sensors piles every placement of a period onto the
// same momentarily-cool server, saturating machines one at a time —
// the opposite of what a thermal balancer is for.
type CoolestFirst struct {
	c *cluster.Cluster
	// kAirWPerK caches the spec's air conductance; reading it through
	// Config() would copy the whole spec per ranking probe, and the
	// ranking probes every server per placement.
	kAirWPerK float64
}

// NewCoolestFirst returns a coolest-first scheduler bound to c.
func NewCoolestFirst(c *cluster.Cluster) *CoolestFirst {
	return &CoolestFirst{c: c, kAirWPerK: c.Config().Server.AirConductanceWPerK}
}

// Name implements Scheduler.
func (f *CoolestFirst) Name() string { return "coolest-first" }

// Tick implements Scheduler (stateless per period).
func (f *CoolestFirst) Tick(time.Duration) {}

// projectedTempC is the steady-state temperature the server is heading
// toward at its current power draw — the quantity a placement changes
// immediately. Keep in sync with ServerSpec.SteadyAirTempC.
func (f *CoolestFirst) projectedTempC(s *cluster.Server) float64 {
	return s.InletTempC() + s.PowerW()/f.kAirWPerK
}

// Place implements Scheduler.
func (f *CoolestFirst) Place(workload.Workload) (*cluster.Server, error) {
	var best *cluster.Server
	var bestTemp float64
	for _, s := range f.c.Servers() {
		if s.FreeCores() == 0 {
			continue
		}
		t := f.projectedTempC(s)
		if best == nil || t < bestTemp {
			best, bestTemp = s, t
		}
	}
	if best == nil {
		return nil, ErrNoCapacity
	}
	return best, nil
}

// SelectRemoval implements Scheduler.
func (f *CoolestFirst) SelectRemoval(w workload.Workload) (*cluster.Server, error) {
	wi := f.c.WorkloadIndex(w)
	var best *cluster.Server
	var bestTemp float64
	for _, s := range f.c.Servers() {
		if s.JobsAt(wi) == 0 {
			continue
		}
		t := f.projectedTempC(s)
		if best == nil || t > bestTemp {
			best, bestTemp = s, t
		}
	}
	if best == nil {
		return nil, ErrNoJob
	}
	return best, nil
}
