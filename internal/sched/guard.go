package sched

import (
	"math"
	"time"

	"vmt/internal/cluster"
	"vmt/internal/telemetry"
	"vmt/internal/workload"
)

// Guard is the defensive input-validation layer between the servers'
// self-reported telemetry and the schedulers that act on it. Byzantine
// fault plans can make a server lie about its utilization or melt
// fraction while staying inside the plausible [0, 1] range — lies no
// range clamp can catch. The guard cross-checks each report against
// physics the reporter does not control:
//
//   - Utilization vs. power residual: the PDU-measured power draw is
//     authoritative. An honest server's dynamic draw (power minus
//     idle) must land between claimed-busy-cores × the cheapest
//     per-core wattage in the mix and claimed-busy-cores × the most
//     expensive one. A report outside that envelope is physically
//     inconsistent with the measured draw. When the draw sits at the
//     nameplate peak the dynamic component is censored by the cap and
//     the check abstains.
//
//   - Melt-fraction slew rate: wax melts no faster than the air→wax
//     conductance can deliver heat against the latent capacity of the
//     deployed volume, and the air side can sustain at most the
//     nameplate power over the inlet. A reported melt fraction moving
//     faster than twice that physical ceiling per tick is implausible
//     regardless of its absolute value. The baseline resets across a
//     server's crash/repair (a repaired estimator legitimately jumps
//     when it re-anchors).
//
// Persistent violations (guardStrikeLimit strikes without an
// intervening clean window) quarantine the server's reports:
// cluster.Server.SetReportsQuarantined flips, sched_reports_quarantined
// counts the transition, and VMT-WA's health scan degrades the server
// to trust-free temperature-ordered placement until the reports have
// been clean for guardCleanWindow consecutive ticks. The guard runs on
// the sequential fault band right after the injector, reads no RNG,
// and allocates nothing after construction, so it preserves
// bit-identity for every PhysicsWorkers setting.
type Guard struct {
	c *cluster.Cluster

	// Per-core dynamic power envelope across the workload mix,
	// already scaled by the server spec's PowerScale. powerCheck is
	// false when the mix is empty.
	minCoreW, maxCoreW float64
	powerCheck         bool

	idleW, peakW float64
	// maxMeltDelta is the per-tick plausibility bound on reported
	// melt-fraction movement.
	maxMeltDelta float64

	state []guardState

	quarantined uint64
	quarCount   *telemetry.Counter
}

// guardState is one server's strike bookkeeping.
type guardState struct {
	strikes   int
	clean     int
	lastMelt  float64
	hasLast   bool
	wasFailed bool
}

const (
	// guardStrikeLimit is how many violations (without an intervening
	// clean window) quarantine a reporter.
	guardStrikeLimit = 3
	// guardCleanWindow is how many consecutive clean ticks forgive
	// accumulated strikes and release a quarantined reporter.
	guardCleanWindow = 10
	// guardPowerEpsW absorbs float rounding between the incrementally
	// maintained power ledger and the utilization-implied bound.
	guardPowerEpsW = 0.5
	// guardMeltEps absorbs rounding in the melt-slew comparison.
	guardMeltEps = 1e-9
)

// NewGuard builds a guard over c for the given workload mix, checking
// once per step interval.
func NewGuard(c *cluster.Cluster, mix *workload.Mix, step time.Duration, reg *telemetry.Registry) *Guard {
	g := &Guard{
		c:         c,
		state:     make([]guardState, c.Len()),
		quarCount: reg.Counter("sched_reports_quarantined"),
	}
	spec := c.Config().Server
	mat := c.Config().Material
	g.idleW = spec.IdlePowerW
	g.peakW = spec.PeakPowerW
	if mix != nil {
		for _, e := range mix.Entries() {
			w := e.Workload.PerCorePowerW() * spec.PowerScale
			if !g.powerCheck || w < g.minCoreW {
				g.minCoreW = w
			}
			if !g.powerCheck || w > g.maxCoreW {
				g.maxCoreW = w
			}
			g.powerCheck = true
		}
	}
	// Physical melt-rate ceiling: the air node cannot sustain more
	// than peak power over the inlet (steady-state headroom
	// peak/K_air), the wax link delivers at most K_wax × that
	// headroom, and the pack absorbs latent × density × volume per
	// unit fraction. Factor 2 of margin over the steady-state bound
	// covers transients; honest estimators stay well inside it.
	headroomK := spec.PeakPowerW / spec.AirConductanceWPerK
	latentJ := mat.LatentHeatJPerKg * mat.DensityKgPerL * spec.WaxVolumeL
	g.maxMeltDelta = 2*spec.WaxConductanceWPerK*headroomK/latentJ*step.Seconds() + guardMeltEps
	return g
}

// Quarantined returns how many quarantine transitions have fired.
func (g *Guard) Quarantined() uint64 { return g.quarantined }

// Tick revalidates every server's reports against the physical
// cross-checks and updates quarantine state. Runs on the sequential
// fault band after the injector's mutations, so the scheduler band
// that follows sees settled trust decisions.
func (g *Guard) Tick(time.Duration) {
	for i, s := range g.c.Servers() {
		st := &g.state[i]
		if s.Failed() {
			// A crashed server reports nothing worth judging; forget
			// the melt baseline so the repair re-anchor is not scored
			// as a violation.
			st.hasLast = false
			st.wasFailed = true
			continue
		}
		violated := false
		if g.powerCheck {
			p := s.PowerW()
			if p < g.peakW-guardPowerEpsW {
				dyn := p - g.idleW
				claimed := s.ReportedUtilization() * float64(s.Cores())
				if claimed*g.minCoreW > dyn+guardPowerEpsW ||
					claimed*g.maxCoreW < dyn-guardPowerEpsW {
					violated = true
				}
			}
		}
		frac := s.ReportedMeltFrac()
		if st.wasFailed {
			st.wasFailed = false
			st.hasLast = false
		}
		if st.hasLast {
			if math.Abs(frac-st.lastMelt) > g.maxMeltDelta {
				violated = true
			}
		}
		st.lastMelt, st.hasLast = frac, true

		if violated {
			st.strikes++
			st.clean = 0
		} else {
			st.clean++
			if st.clean >= guardCleanWindow {
				st.strikes = 0
			}
		}
		if q := s.ReportsQuarantined(); !q && st.strikes >= guardStrikeLimit {
			s.SetReportsQuarantined(true)
			g.quarantined++
			g.quarCount.Inc()
		} else if q && st.strikes == 0 && st.clean >= guardCleanWindow {
			s.SetReportsQuarantined(false)
		}
	}
}
