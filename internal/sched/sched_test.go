package sched

import (
	"errors"
	"testing"
	"time"

	"vmt/internal/cluster"
	"vmt/internal/trace"
	"vmt/internal/workload"
)

func newCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.PaperCluster(n))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRoundRobinCycles(t *testing.T) {
	c := newCluster(t, 4)
	rr := NewRoundRobin(c)
	if rr.Name() != "round-robin" {
		t.Fatal("name")
	}
	for i := 0; i < 8; i++ {
		s, err := rr.Place(workload.WebSearch)
		if err != nil {
			t.Fatal(err)
		}
		if s.ID() != i%4 {
			t.Fatalf("placement %d went to server %d", i, s.ID())
		}
		if err := s.Place(workload.WebSearch); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if c.Server(i).BusyCores() != 2 {
			t.Fatalf("server %d has %d jobs", i, c.Server(i).BusyCores())
		}
	}
}

func TestRoundRobinSkipsFullServers(t *testing.T) {
	c := newCluster(t, 2)
	rr := NewRoundRobin(c)
	for i := 0; i < 32; i++ {
		if err := c.Server(0).Place(workload.VirusScan); err != nil {
			t.Fatal(err)
		}
	}
	s, err := rr.Place(workload.VirusScan)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 1 {
		t.Fatalf("placement went to full server %d", s.ID())
	}
}

func TestRoundRobinNoCapacity(t *testing.T) {
	c := newCluster(t, 1)
	rr := NewRoundRobin(c)
	for i := 0; i < 32; i++ {
		if err := c.Server(0).Place(workload.VirusScan); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rr.Place(workload.VirusScan); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
}

func TestRoundRobinRemovalCycles(t *testing.T) {
	c := newCluster(t, 3)
	rr := NewRoundRobin(c)
	for i := 0; i < 3; i++ {
		if err := c.Server(i).Place(workload.WebSearch); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		s, err := rr.SelectRemoval(workload.WebSearch)
		if err != nil {
			t.Fatal(err)
		}
		if s.ID() != i {
			t.Fatalf("removal %d from server %d", i, s.ID())
		}
		if err := s.Remove(workload.WebSearch); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rr.SelectRemoval(workload.WebSearch); !errors.Is(err, ErrNoJob) {
		t.Fatal("empty cluster should report ErrNoJob")
	}
}

func TestCoolestFirstPrefersCooler(t *testing.T) {
	c := newCluster(t, 3)
	cf := NewCoolestFirst(c)
	if cf.Name() != "coolest-first" {
		t.Fatal("name")
	}
	// Heat server 0 by loading and stepping.
	for i := 0; i < 32; i++ {
		if err := c.Server(0).Place(workload.VideoEncoding); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		if _, err := c.Step(time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if !(c.Server(0).AirTempC() > c.Server(1).AirTempC()) {
		t.Fatal("server 0 should be hotter")
	}
	s, err := cf.Place(workload.WebSearch)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() == 0 {
		t.Fatal("coolest-first placed on the hottest server")
	}
	// Removal picks the hottest server running the workload.
	if err := c.Server(1).Place(workload.VideoEncoding); err != nil {
		t.Fatal(err)
	}
	rm, err := cf.SelectRemoval(workload.VideoEncoding)
	if err != nil {
		t.Fatal(err)
	}
	if rm.ID() != 0 {
		t.Fatalf("removal from server %d, want hottest (0)", rm.ID())
	}
}

func TestCoolestFirstErrors(t *testing.T) {
	c := newCluster(t, 1)
	cf := NewCoolestFirst(c)
	if _, err := cf.SelectRemoval(workload.WebSearch); !errors.Is(err, ErrNoJob) {
		t.Fatal("want ErrNoJob")
	}
	for i := 0; i < 32; i++ {
		if err := c.Server(0).Place(workload.VirusScan); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cf.Place(workload.VirusScan); !errors.Is(err, ErrNoCapacity) {
		t.Fatal("want ErrNoCapacity")
	}
}

func TestLoadManagerReconcile(t *testing.T) {
	c := newCluster(t, 10)
	mix := workload.PaperMix()
	tr, err := trace.Generate(trace.PaperTwoDay(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := NewLoadManager(c, mix, tr, NewRoundRobin(c))
	if err != nil {
		t.Fatal(err)
	}
	// At the day-two peak, ≈95% of 320 cores should be busy.
	if err := lm.Reconcile(46 * time.Hour); err != nil {
		t.Fatal(err)
	}
	busy := c.BusyCores()
	if busy < 280 || busy > 320 {
		t.Fatalf("busy cores at peak = %d, want ≈304", busy)
	}
	// Per-workload counts match the targets.
	for _, e := range mix.Entries() {
		want := lm.TargetCores(46*time.Hour, e.Workload)
		if got := c.JobCount(e.Workload); got != want {
			t.Errorf("%s jobs = %d, want %d", e.Workload.Name, got, want)
		}
	}
	// Reconciling down to the trough sheds load.
	if err := lm.Reconcile(53 * time.Hour); err != nil { // beyond trace: clamps low? no, clamp=end
		t.Fatal(err)
	}
	// Use the real trough instead.
	if err := lm.Reconcile(29 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := c.BusyCores(); got > busy {
		t.Fatalf("load should fall at the trough, got %d > %d", got, busy)
	}
}

func TestLoadManagerValidation(t *testing.T) {
	c := newCluster(t, 2)
	mix := workload.PaperMix()
	tr, err := trace.Generate(trace.PaperTwoDay(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLoadManager(nil, mix, tr, NewRoundRobin(c)); err == nil {
		t.Fatal("nil cluster should fail")
	}
	if _, err := NewLoadManager(c, nil, tr, NewRoundRobin(c)); err == nil {
		t.Fatal("nil mix should fail")
	}
	if _, err := NewLoadManager(c, mix, nil, NewRoundRobin(c)); err == nil {
		t.Fatal("nil trace should fail")
	}
	if _, err := NewLoadManager(c, mix, tr, nil); err == nil {
		t.Fatal("nil scheduler should fail")
	}
}

// Reconciling repeatedly over the whole trace must never lose or leak
// jobs: counts always match targets exactly.
func TestLoadManagerTracksTraceExactly(t *testing.T) {
	c := newCluster(t, 5)
	mix := workload.PaperMix()
	tr, err := trace.Generate(trace.PaperTwoDay(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := NewLoadManager(c, mix, tr, NewRoundRobin(c))
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h <= 48; h++ {
		now := time.Duration(h) * time.Hour
		if err := lm.Reconcile(now); err != nil {
			t.Fatal(err)
		}
		for _, e := range mix.Entries() {
			want := lm.TargetCores(now, e.Workload)
			if got := c.JobCount(e.Workload); got != want {
				t.Fatalf("h=%d %s: jobs %d != target %d", h, e.Workload.Name, got, want)
			}
		}
	}
}
