package sched

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"vmt/internal/cluster"
	"vmt/internal/stats"
	"vmt/internal/telemetry"
	"vmt/internal/workload"
)

// StreamManager is the query-level alternative to LoadManager: instead
// of reconciling fluid job counts against the trace, task-like
// workloads (video encoding, virus scanning, clustering) arrive as
// discrete jobs — a Poisson stream whose rate tracks the trace — run
// for a sampled duration on the core they were placed on, and leave.
// Latency-critical services (Web Search, Data Caching) remain fluid:
// their serving capacity is resized continuously with load, which is
// how real deployments autoscale them.
//
// When an arrival finds no free core anywhere, it is *dropped* and
// counted — the QoS failure mode the paper warns about when VMT's
// groups are sized too small ("individual queries must be dropped or
// queued causing QoS degradation"). Drop counts make group-sizing
// mistakes observable.
type StreamManager struct {
	c     *cluster.Cluster
	mix   *workload.Mix
	src   workload.JobSource
	sched Scheduler
	rng   *stats.RNG

	// durations maps task-like workload names to mean task durations;
	// workloads absent from the map are treated as fluid services.
	durations map[string]time.Duration

	fluidCounts map[workload.Workload]int
	taskCounts  map[workload.Workload]int
	completions completionHeap
	// lostCredits[w] counts tasks of w dropped during an evacuation
	// whose completion entries are still in the heap. Task jobs are
	// fungible, so when a completion eventually fires with no job of w
	// left anywhere, a credit absorbs it instead of erroring.
	lostCredits map[workload.Workload]int
	dropped     uint64
	arrived     uint64
	lastNow     time.Duration
	started     bool

	// Optional instruments (nil-safe).
	placements   *telemetry.Counter
	evictions    *telemetry.Counter
	taskArrivals *telemetry.Counter
	taskDrops    *telemetry.Counter
	shed         *telemetry.Counter
}

// SetMetrics registers the stream manager's counters in r:
// sched_placements, sched_evictions, sched_task_arrivals,
// sched_task_drops, and sched_jobs_shed (work explicitly shed because
// the cluster had no capacity for it — a subset of the drops). A nil
// registry leaves it uninstrumented.
func (m *StreamManager) SetMetrics(r *telemetry.Registry) {
	m.placements = r.Counter("sched_placements")
	m.evictions = r.Counter("sched_evictions")
	m.taskArrivals = r.Counter("sched_task_arrivals")
	m.taskDrops = r.Counter("sched_task_drops")
	m.shed = r.Counter("sched_jobs_shed")
}

// DefaultTaskDurations returns the task model for the paper mix:
// encoding a video ≈ 8 min, scanning an upload ≈ 2 min, one clustering
// batch ≈ 20 min. (Durations are means of exponential distributions.)
func DefaultTaskDurations() map[string]time.Duration {
	return map[string]time.Duration{
		"VideoEncoding": 8 * time.Minute,
		"VirusScan":     2 * time.Minute,
		"Clustering":    20 * time.Minute,
	}
}

// NewStreamManager builds a query-level load manager. seed drives the
// arrival and duration draws; identical seeds reproduce identical
// streams.
func NewStreamManager(c *cluster.Cluster, mix *workload.Mix, src workload.JobSource,
	s Scheduler, durations map[string]time.Duration, seed uint64) (*StreamManager, error) {
	if c == nil || mix == nil || src == nil || s == nil {
		return nil, fmt.Errorf("sched: stream manager needs cluster, mix, job source, and scheduler")
	}
	for name, d := range durations {
		if d <= 0 {
			return nil, fmt.Errorf("sched: task duration for %s must be positive", name)
		}
	}
	return &StreamManager{
		c:           c,
		mix:         mix,
		src:         src,
		sched:       s,
		rng:         stats.NewRNG(seed ^ 0x9e3779b97f4a7c15),
		durations:   durations,
		fluidCounts: make(map[workload.Workload]int),
		taskCounts:  make(map[workload.Workload]int),
		lostCredits: make(map[workload.Workload]int),
	}, nil
}

// Dropped returns how many task arrivals found no free core.
func (m *StreamManager) Dropped() uint64 { return m.dropped }

// Arrived returns the total task arrivals so far.
func (m *StreamManager) Arrived() uint64 { return m.arrived }

// completion is a scheduled task departure.
type completion struct {
	at     time.Duration
	server int
	w      workload.Workload
}

type completionHeap []completion

func (h completionHeap) Len() int           { return len(h) }
func (h completionHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h completionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)        { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// Reconcile runs one scheduling period at time now: task departures
// first, then the scheduler's Tick, then fluid resizing, then new task
// arrivals for the elapsed interval.
func (m *StreamManager) Reconcile(now time.Duration) error {
	// 1. Complete tasks whose time has come.
	for len(m.completions) > 0 && m.completions[0].at <= now {
		c := heap.Pop(&m.completions).(completion)
		if err := m.finishTask(c); err != nil {
			return err
		}
	}

	m.sched.Tick(now)

	// 2. Fluid services track the trace exactly (their share of cores).
	for _, e := range m.mix.Entries() {
		if m.isTask(e.Workload) {
			continue
		}
		target := int(math.Round(m.src.At(now) * e.Share * float64(m.c.TotalCores())))
		if err := m.resizeFluid(e.Workload, target, now); err != nil {
			return err
		}
	}

	// 3. Task arrivals over the elapsed interval (skipped on the very
	// first call, which only seeds the fluid baseline).
	if m.started {
		dt := now - m.lastNow
		if dt > 0 {
			if err := m.arrivals(now, dt); err != nil {
				return err
			}
		}
	}
	m.started = true
	m.lastNow = now
	return nil
}

func (m *StreamManager) isTask(w workload.Workload) bool {
	_, ok := m.durations[w.Name]
	return ok
}

// finishTask removes a departing task, preferring the server it was
// placed on; if the scheduler migrated it away (jobs of one workload
// are fungible), any server running the workload serves.
func (m *StreamManager) finishTask(c completion) error {
	s := m.c.Server(c.server)
	if s.Jobs(c.w) == 0 {
		var err error
		s, err = m.sched.SelectRemoval(c.w)
		if err != nil {
			if m.lostCredits[c.w] > 0 {
				// The task this completion belonged to was dropped
				// during an evacuation; its count was deducted then.
				m.lostCredits[c.w]--
				return nil
			}
			return fmt.Errorf("sched: completing %s task: %w", c.w.Name, err)
		}
	}
	if err := s.Remove(c.w); err != nil {
		return err
	}
	m.evictions.Inc()
	m.taskCounts[c.w]--
	return nil
}

// resizeFluid adjusts a service's footprint to target cores.
func (m *StreamManager) resizeFluid(w workload.Workload, target int, now time.Duration) error {
	cur := m.fluidCounts[w]
	for cur < target {
		s, err := m.sched.Place(w)
		if err != nil {
			// The cluster is momentarily full of tasks; serve what we
			// can and try again next period (counted as degradation).
			// The whole remaining shortfall is shed at once.
			m.dropped++
			m.taskDrops.Inc()
			m.shed.Add(uint64(target - cur))
			break
		}
		if err := s.Place(w); err != nil {
			return err
		}
		m.placements.Inc()
		cur++
	}
	for cur > target {
		s, err := m.sched.SelectRemoval(w)
		if err != nil {
			return fmt.Errorf("sched: shrinking %s at %v: %w", w.Name, now, err)
		}
		if err := s.Remove(w); err != nil {
			return err
		}
		m.evictions.Inc()
		cur--
	}
	m.fluidCounts[w] = cur
	return nil
}

// arrivals draws the interval's Poisson arrivals per task workload and
// places them.
func (m *StreamManager) arrivals(now, dt time.Duration) error {
	u := m.src.At(now)
	for _, e := range m.mix.Entries() {
		if !m.isTask(e.Workload) {
			continue
		}
		mean := m.durations[e.Workload.Name]
		// Little's law: to hold e.Share×u of the cores busy with tasks
		// of mean duration D, arrivals must come at rate N·u·share/D.
		targetBusy := u * e.Share * float64(m.c.TotalCores())
		lambda := targetBusy / mean.Seconds() * dt.Seconds()
		n := m.poisson(lambda)
		for i := 0; i < n; i++ {
			m.arrived++
			m.taskArrivals.Inc()
			s, err := m.sched.Place(e.Workload)
			if err != nil {
				m.dropped++
				m.taskDrops.Inc()
				m.shed.Inc()
				continue
			}
			if err := s.Place(e.Workload); err != nil {
				return err
			}
			m.placements.Inc()
			m.taskCounts[e.Workload]++
			d := m.expDuration(mean)
			heap.Push(&m.completions, completion{at: now + d, server: s.ID(), w: e.Workload})
		}
	}
	return nil
}

// poisson draws a Poisson deviate with the given mean. It delegates to
// the shared stats implementation, which consumes the identical RNG
// call sequence the in-package version did.
func (m *StreamManager) poisson(lambda float64) int {
	return m.rng.Poisson(lambda)
}

// Evacuate moves every job off a crashed server through the normal
// placement logic. s must already be marked failed. Fluid jobs that
// find no capacity are deducted from the service footprint (the next
// Reconcile re-grows it when capacity returns); lost task jobs are
// counted as drops and leave a completion credit behind so their
// still-scheduled departures don't error.
func (m *StreamManager) Evacuate(s *cluster.Server) (moved, lost int, err error) {
	for _, e := range m.mix.Entries() {
		w := e.Workload
		task := m.isTask(w)
		for s.Jobs(w) > 0 {
			if rerr := s.Remove(w); rerr != nil {
				return moved, lost, fmt.Errorf("sched: evacuating %s from server %d: %w", w.Name, s.ID(), rerr)
			}
			dst, perr := m.sched.Place(w)
			if perr != nil {
				lost++
				m.shed.Inc()
				if task {
					m.taskCounts[w]--
					m.lostCredits[w]++
					m.dropped++
					m.taskDrops.Inc()
				} else {
					m.fluidCounts[w]--
				}
				continue
			}
			if perr := dst.Place(w); perr != nil {
				return moved, lost, fmt.Errorf("sched: %s chose full server %d during evacuation: %w",
					m.sched.Name(), dst.ID(), perr)
			}
			moved++
		}
	}
	return moved, lost, nil
}

// expDuration samples an exponential task duration with the given
// mean, floored at one second.
func (m *StreamManager) expDuration(mean time.Duration) time.Duration {
	u := m.rng.Float64()
	for u == 0 { //vmtlint:allow floateq rejects the exact 0.0 draw so log(u) stays finite
		u = m.rng.Float64()
	}
	d := time.Duration(-math.Log(u) * float64(mean))
	if d < time.Second {
		d = time.Second
	}
	return d
}
