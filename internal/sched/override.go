package sched

import (
	"fmt"
	"time"

	"vmt/internal/cluster"
	"vmt/internal/workload"
)

// Override wraps a Scheduler so an external controller (a session
// client, an RL policy, an MPC loop) can steer placement without
// replacing the built-in policy. Each Place consults, in order:
//
//  1. the FIFO queue of one-shot directives enqueued via Direct;
//  2. the standing placer callback installed via SetPlacer;
//  3. the wrapped policy.
//
// A directive or placer choice is validated — the server must exist,
// be alive, and have a free core — and an invalid choice falls back to
// the wrapped policy, counted in Rejected. With no directives and no
// placer, Override is transparent: it adds no RNG draws and changes no
// decisions, so wrapping is bit-identical to not wrapping.
//
// SelectRemoval and Tick always delegate: external controllers steer
// where load lands, not the bookkeeping of where it drains from.
type Override struct {
	c     *cluster.Cluster
	inner Scheduler
	// directives is a FIFO per Place-call stream: the first queued
	// directive naming the placed workload wins.
	directives []directive
	placer     func(w workload.Workload) int
	overridden uint64
	rejected   uint64
}

type directive struct {
	workload string
	server   int
}

// NewOverride wraps inner, bound to the same cluster.
func NewOverride(c *cluster.Cluster, inner Scheduler) (*Override, error) {
	if c == nil || inner == nil {
		return nil, fmt.Errorf("sched: override needs cluster and inner scheduler")
	}
	return &Override{c: c, inner: inner}, nil
}

// Inner returns the wrapped policy, for callers that resolve optional
// interfaces (hot-group size, tunables) on the real scheduler.
func (o *Override) Inner() Scheduler { return o.inner }

// Direct enqueues a one-shot directive: the next placement of the
// named workload goes to server id (if valid at placement time).
func (o *Override) Direct(workloadName string, serverID int) {
	o.directives = append(o.directives, directive{workload: workloadName, server: serverID})
}

// SetPlacer installs (or, with nil, removes) the standing placement
// callback. A non-negative return forces the server; a negative return
// defers to the wrapped policy for that placement.
func (o *Override) SetPlacer(fn func(w workload.Workload) int) { o.placer = fn }

// Overridden returns how many placements an external choice decided.
func (o *Override) Overridden() uint64 { return o.overridden }

// Rejected returns how many external choices were invalid (bad ID,
// failed server, no free core) and fell back to the wrapped policy.
func (o *Override) Rejected() uint64 { return o.rejected }

// Name implements Scheduler, reporting the wrapped policy's name so
// results attribute runs to the real policy.
func (o *Override) Name() string { return o.inner.Name() }

// Tick implements Scheduler.
func (o *Override) Tick(now time.Duration) { o.inner.Tick(now) }

// Place implements Scheduler: directives first, then the standing
// placer, then the wrapped policy.
func (o *Override) Place(w workload.Workload) (*cluster.Server, error) {
	for i, d := range o.directives {
		if d.workload != w.Name {
			continue
		}
		o.directives = append(o.directives[:i], o.directives[i+1:]...)
		if s := o.validTarget(d.server); s != nil {
			o.overridden++
			return s, nil
		}
		o.rejected++
		break
	}
	if o.placer != nil {
		if id := o.placer(w); id >= 0 {
			if s := o.validTarget(id); s != nil {
				o.overridden++
				return s, nil
			}
			o.rejected++
		}
	}
	return o.inner.Place(w)
}

// validTarget returns the server if it can accept one more job.
func (o *Override) validTarget(id int) *cluster.Server {
	if id < 0 || id >= o.c.Len() {
		return nil
	}
	s := o.c.Server(id)
	if s.Failed() || s.FreeCores() == 0 {
		return nil
	}
	return s
}

// SelectRemoval implements Scheduler.
func (o *Override) SelectRemoval(w workload.Workload) (*cluster.Server, error) {
	return o.inner.SelectRemoval(w)
}
