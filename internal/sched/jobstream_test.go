package sched

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"vmt/internal/trace"
	"vmt/internal/workload"
)

func flatTrace(t *testing.T, util float64, hours int) *trace.Trace {
	t.Helper()
	var b strings.Builder
	for i := 0; i <= hours*60; i++ {
		fmt.Fprintf(&b, "%.3f\n", util)
	}
	tr, err := trace.FromReader(strings.NewReader(b.String()), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestStreamManagerValidation(t *testing.T) {
	c := newCluster(t, 2)
	mix := workload.PaperMix()
	tr := flatTrace(t, 0.5, 1)
	if _, err := NewStreamManager(nil, mix, tr, NewRoundRobin(c), nil, 1); err == nil {
		t.Fatal("nil cluster should fail")
	}
	if _, err := NewStreamManager(c, mix, tr, NewRoundRobin(c),
		map[string]time.Duration{"VideoEncoding": 0}, 1); err == nil {
		t.Fatal("zero duration should fail")
	}
}

// Under a flat trace, Little's law holds: the busy-core population per
// task workload hovers around utilization × share × cores.
func TestStreamManagerLittlesLaw(t *testing.T) {
	c := newCluster(t, 20) // 640 cores
	mix := workload.PaperMix()
	tr := flatTrace(t, 0.5, 12)
	lm, err := NewStreamManager(c, mix, tr, NewRoundRobin(c), DefaultTaskDurations(), 7)
	if err != nil {
		t.Fatal(err)
	}
	var samples []float64
	for minute := 0; minute <= 12*60; minute++ {
		now := time.Duration(minute) * time.Minute
		if err := lm.Reconcile(now); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Step(time.Minute); err != nil {
			t.Fatal(err)
		}
		if minute > 2*60 { // past warm-up
			samples = append(samples, float64(c.JobCount(workload.VideoEncoding)))
		}
	}
	want := 0.5 * mix.Share("VideoEncoding") * 640 // 48 cores
	var mean float64
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	if math.Abs(mean-want) > want*0.15 {
		t.Fatalf("video population mean %.1f, want ≈%.1f", mean, want)
	}
	// Fluid services track exactly.
	wantSearch := int(math.Round(0.5 * mix.Share("WebSearch") * 640))
	if got := c.JobCount(workload.WebSearch); got != wantSearch {
		t.Fatalf("search cores = %d, want %d", got, wantSearch)
	}
	if lm.Arrived() == 0 {
		t.Fatal("no arrivals recorded")
	}
}

// Total cores never exceed capacity, and a saturating load produces
// drops rather than errors.
func TestStreamManagerDropsWhenFull(t *testing.T) {
	c := newCluster(t, 2) // tiny cluster
	mix := workload.PaperMix()
	tr := flatTrace(t, 0.99, 6)
	lm, err := NewStreamManager(c, mix, tr, NewRoundRobin(c), DefaultTaskDurations(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for minute := 0; minute <= 6*60; minute++ {
		if err := lm.Reconcile(time.Duration(minute) * time.Minute); err != nil {
			t.Fatal(err)
		}
		if c.BusyCores() > c.TotalCores() {
			t.Fatal("over capacity")
		}
		if _, err := c.Step(time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if lm.Dropped() == 0 {
		t.Fatal("a saturated cluster should drop some arrivals")
	}
}

func TestStreamManagerDeterministic(t *testing.T) {
	run := func() (uint64, int) {
		c := newCluster(t, 5)
		mix := workload.PaperMix()
		tr := flatTrace(t, 0.6, 4)
		lm, err := NewStreamManager(c, mix, tr, NewRoundRobin(c), DefaultTaskDurations(), 42)
		if err != nil {
			t.Fatal(err)
		}
		for minute := 0; minute <= 4*60; minute++ {
			if err := lm.Reconcile(time.Duration(minute) * time.Minute); err != nil {
				t.Fatal(err)
			}
		}
		return lm.Arrived(), c.BusyCores()
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}

// Completions always find a job to remove, even when the scheduler has
// migrated tasks between servers (VMT-WA rebalancing).
func TestStreamManagerSurvivesMigration(t *testing.T) {
	c := newCluster(t, 4)
	mix := workload.PaperMix()
	tr := flatTrace(t, 0.6, 3)
	lm, err := NewStreamManager(c, mix, tr, NewRoundRobin(c), DefaultTaskDurations(), 11)
	if err != nil {
		t.Fatal(err)
	}
	for minute := 0; minute <= 60; minute++ {
		if err := lm.Reconcile(time.Duration(minute) * time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	// Manually migrate every VideoEncoding job to different servers,
	// simulating an aggressive rebalancer.
	moved := 0
	for i := 0; i < 4; i++ {
		s := c.Server(i)
		for s.Jobs(workload.VideoEncoding) > 0 {
			dst := c.Server((i + 1) % 4)
			if dst.FreeCores() == 0 {
				break
			}
			if err := s.Remove(workload.VideoEncoding); err != nil {
				t.Fatal(err)
			}
			if err := dst.Place(workload.VideoEncoding); err != nil {
				t.Fatal(err)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Skip("no jobs to migrate at this seed")
	}
	// All pending completions must still succeed.
	for minute := 61; minute <= 3*60; minute++ {
		if err := lm.Reconcile(time.Duration(minute) * time.Minute); err != nil {
			t.Fatalf("completion after migration failed: %v", err)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	c := newCluster(t, 1)
	lm, err := NewStreamManager(c, workload.PaperMix(), flatTrace(t, 0.5, 1),
		NewRoundRobin(c), DefaultTaskDurations(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, lambda := range []float64{0.5, 5, 200} {
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(lm.poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > lambda*0.05+0.05 {
			t.Fatalf("poisson(%v) mean = %v", lambda, mean)
		}
	}
	if lm.poisson(0) != 0 || lm.poisson(-1) != 0 {
		t.Fatal("non-positive lambda should give zero")
	}
}

func TestExpDurationMean(t *testing.T) {
	c := newCluster(t, 1)
	lm, err := NewStreamManager(c, workload.PaperMix(), flatTrace(t, 0.5, 1),
		NewRoundRobin(c), DefaultTaskDurations(), 9)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += lm.expDuration(10 * time.Minute)
	}
	mean := sum / n
	if mean < 9*time.Minute || mean > 11*time.Minute {
		t.Fatalf("exp duration mean = %v, want ≈10m", mean)
	}
}

// Fluid resizing degrades gracefully when tasks hog the whole cluster:
// the manager counts the shortfall as drops instead of failing.
func TestStreamManagerFluidDeficit(t *testing.T) {
	c := newCluster(t, 1)
	mix := workload.PaperMix()
	tr := flatTrace(t, 0.9, 2)
	lm, err := NewStreamManager(c, mix, tr, NewRoundRobin(c), DefaultTaskDurations(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the lone server with long tasks by hand.
	for c.Server(0).FreeCores() > 0 {
		if err := c.Server(0).Place(workload.Clustering); err != nil {
			t.Fatal(err)
		}
	}
	if err := lm.Reconcile(0); err != nil {
		t.Fatalf("full cluster should not error: %v", err)
	}
	if lm.Dropped() == 0 {
		t.Fatal("fluid deficit should be counted as drops")
	}
}
