package sched

import (
	"errors"
	"fmt"
	"math"
	"time"

	"vmt/internal/cluster"
	"vmt/internal/telemetry"
	"vmt/internal/workload"
)

// LoadManager reconciles the cluster's job population with the job
// source: once per scheduling period it computes each workload's target
// job count (utilization × share × total cores) and asks the bound
// scheduler where to add or evict the difference. This is the
// cluster-level job scheduling loop of Section IV-A. The source can be
// the paper's finite trace or any open-loop generator.
type LoadManager struct {
	c     *cluster.Cluster
	mix   *workload.Mix
	src   workload.JobSource
	sched Scheduler
	// entries and shares cache the mix decomposition (entry order and
	// Share lookups are invariant per run), and counts caches the
	// per-entry job totals so reconciliation neither rescans the
	// cluster nor hashes Workload structs per tick.
	entries []workload.MixEntry
	shares  []float64
	counts  []int
	// placements/evictions/shed are optional instruments (nil-safe).
	placements *telemetry.Counter
	evictions  *telemetry.Counter
	shed       *telemetry.Counter
}

// SetMetrics registers the load manager's counters (sched_placements,
// sched_evictions, sched_jobs_shed) in r. A nil registry leaves the
// manager uninstrumented.
func (m *LoadManager) SetMetrics(r *telemetry.Registry) {
	m.placements = r.Counter("sched_placements")
	m.evictions = r.Counter("sched_evictions")
	m.shed = r.Counter("sched_jobs_shed")
}

// NewLoadManager binds a cluster, workload mix, job source, and
// scheduler.
func NewLoadManager(c *cluster.Cluster, mix *workload.Mix, src workload.JobSource, s Scheduler) (*LoadManager, error) {
	if c == nil || mix == nil || src == nil || s == nil {
		return nil, fmt.Errorf("sched: load manager needs cluster, mix, job source, and scheduler")
	}
	entries := mix.Entries()
	shares := make([]float64, len(entries))
	for i, e := range entries {
		shares[i] = mix.Share(e.Workload.Name)
	}
	return &LoadManager{
		c:       c,
		mix:     mix,
		src:     src,
		sched:   s,
		entries: entries,
		shares:  shares,
		counts:  make([]int, len(entries)),
	}, nil
}

// Scheduler returns the bound placement policy.
func (m *LoadManager) Scheduler() Scheduler { return m.sched }

// TargetCores returns the per-workload core target at time now.
func (m *LoadManager) TargetCores(now time.Duration, w workload.Workload) int {
	u := m.src.At(now)
	return int(math.Round(u * m.mix.Share(w.Name) * float64(m.c.TotalCores())))
}

// Reconcile runs one scheduling period: the scheduler's Tick first
// (group maintenance), then per-workload placement/eviction in
// deterministic (name) order. The target arithmetic matches
// TargetCores term for term (u × share × cores, same association), so
// the cached shares change no decisions.
func (m *LoadManager) Reconcile(now time.Duration) error {
	m.sched.Tick(now)
	u := m.src.At(now)
	totalCores := float64(m.c.TotalCores())
	for k, e := range m.entries {
		target := int(math.Round(u * m.shares[k] * totalCores))
		cur := m.counts[k]
		for cur < target {
			s, err := m.sched.Place(e.Workload)
			if err != nil {
				if errors.Is(err, ErrNoCapacity) {
					// The cluster genuinely has no free core — possible
					// once fault injection takes servers down. The
					// shortfall is not an error: capacity returns with
					// the repairs, and the run must survive the gap.
					// sched_jobs_shed records the explicit load shed.
					m.shed.Add(uint64(target - cur))
					break
				}
				return fmt.Errorf("sched: placing %s at %v: %w", e.Workload.Name, now, err)
			}
			if err := s.Place(e.Workload); err != nil {
				return fmt.Errorf("sched: %s chose full server %d: %w",
					m.sched.Name(), s.ID(), err)
			}
			m.placements.Inc()
			cur++
		}
		for cur > target {
			s, err := m.sched.SelectRemoval(e.Workload)
			if err != nil {
				return fmt.Errorf("sched: evicting %s at %v: %w", e.Workload.Name, now, err)
			}
			if err := s.Remove(e.Workload); err != nil {
				return fmt.Errorf("sched: %s chose empty server %d: %w",
					m.sched.Name(), s.ID(), err)
			}
			m.evictions.Inc()
			cur--
		}
		m.counts[k] = cur
	}
	return nil
}

// Evacuate moves every job off a crashed server through the normal
// placement logic. s must already be marked failed (so the scheduler
// cannot choose it as a destination). Jobs that find no capacity on
// the survivors are dropped and deducted from the manager's
// bookkeeping; the next Reconcile re-places them if capacity returns.
func (m *LoadManager) Evacuate(s *cluster.Server) (moved, lost int, err error) {
	for k, e := range m.entries {
		for s.Jobs(e.Workload) > 0 {
			if rerr := s.Remove(e.Workload); rerr != nil {
				return moved, lost, fmt.Errorf("sched: evacuating %s from server %d: %w", e.Workload.Name, s.ID(), rerr)
			}
			dst, perr := m.sched.Place(e.Workload)
			if perr != nil {
				if errors.Is(perr, ErrNoCapacity) {
					m.counts[k]--
					lost++
					m.shed.Inc()
					continue
				}
				return moved, lost, perr
			}
			if perr := dst.Place(e.Workload); perr != nil {
				return moved, lost, fmt.Errorf("sched: %s chose full server %d during evacuation: %w",
					m.sched.Name(), dst.ID(), perr)
			}
			moved++
		}
	}
	return moved, lost, nil
}
