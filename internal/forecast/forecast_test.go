package forecast

import (
	"math"
	"testing"
	"time"

	"vmt/internal/stats"
	"vmt/internal/trace"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0.5); err == nil {
		t.Fatal("zero slot should fail")
	}
	if _, err := New(7*time.Minute, 0.5); err == nil {
		t.Fatal("non-divisor slot should fail")
	}
	if _, err := New(time.Hour, 0); err == nil {
		t.Fatal("zero alpha should fail")
	}
	if _, err := New(time.Hour, 1.5); err == nil {
		t.Fatal("alpha > 1 should fail")
	}
}

func TestObserveValidation(t *testing.T) {
	f, err := New(time.Hour, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ObserveDay(make([]float64, 3)); err == nil {
		t.Fatal("wrong length should fail")
	}
	if err := f.ObserveDay(make([]float64, 24)); err == nil {
		t.Fatal("all-zero day should fail")
	}
	day := make([]float64, 24)
	day[0] = -1
	day[1] = 0.5
	if err := f.ObserveDay(day); err == nil {
		t.Fatal("negative sample should fail")
	}
	if _, err := f.PredictDay(); err == nil {
		t.Fatal("prediction without history should fail")
	}
}

// With a stable diurnal pattern, the forecaster converges on it.
func TestLearnsStablePattern(t *testing.T) {
	f, err := New(time.Hour, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	day := make([]float64, 24)
	for h := range day {
		day[h] = 0.3 + 0.6*math.Exp(-math.Pow(float64(h)-20, 2)/18)
	}
	for d := 0; d < 5; d++ {
		if err := f.ObserveDay(day); err != nil {
			t.Fatal(err)
		}
	}
	pred, err := f.PredictDay()
	if err != nil {
		t.Fatal(err)
	}
	mae, err := MAE(pred, day)
	if err != nil {
		t.Fatal(err)
	}
	if mae > 0.01 {
		t.Fatalf("MAE %v on a stable pattern", mae)
	}
	if f.Days() != 5 {
		t.Fatalf("days = %d", f.Days())
	}
}

// With noisy days, the forecast still tracks the underlying profile
// well enough to drive GV selection (MAE well under the noise level).
func TestLearnsNoisyPattern(t *testing.T) {
	f, err := New(time.Hour, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(17)
	base := make([]float64, 24)
	for h := range base {
		base[h] = 0.3 + 0.55*math.Exp(-math.Pow(float64(h)-20, 2)/20)
	}
	noisy := func() []float64 {
		day := make([]float64, 24)
		for h := range day {
			day[h] = stats.Clamp(base[h]+rng.Normal(0, 0.05), 0.01, 1)
		}
		return day
	}
	for d := 0; d < 10; d++ {
		if err := f.ObserveDay(noisy()); err != nil {
			t.Fatal(err)
		}
	}
	pred, err := f.PredictDay()
	if err != nil {
		t.Fatal(err)
	}
	mae, err := MAE(pred, base)
	if err != nil {
		t.Fatal(err)
	}
	if mae > 0.04 {
		t.Fatalf("MAE %v exceeds the noise floor", mae)
	}
}

// End-to-end with the trace generator: observe the paper trace's first
// day, predict the second.
func TestForecastsPaperTrace(t *testing.T) {
	spec := trace.PaperTwoDay()
	spec.NoiseAmp = 0
	tr, err := trace.Generate(spec, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(time.Minute, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	vals := tr.Values()
	if err := f.ObserveDay(vals[:24*60]); err != nil {
		t.Fatal(err)
	}
	pred, err := f.PredictDay()
	if err != nil {
		t.Fatal(err)
	}
	mae, err := MAE(pred, vals[24*60:48*60])
	if err != nil {
		t.Fatal(err)
	}
	// Day 2 peaks higher (0.95 vs 0.90) and two hours later, so the
	// one-day forecast carries real error — but far less than a naive
	// flat prediction.
	if mae > 0.06 {
		t.Fatalf("one-day-ahead MAE %v too large", mae)
	}
}

func TestMAEValidation(t *testing.T) {
	if _, err := MAE(nil, nil); err == nil {
		t.Fatal("empty should fail")
	}
	if _, err := MAE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatch should fail")
	}
	got, err := MAE([]float64{1, 2}, []float64{2, 4})
	if err != nil || got != 1.5 {
		t.Fatalf("MAE = %v, %v", got, err)
	}
}
