// Package forecast implements the day-ahead load prediction that the
// paper's operational discussion presumes: "in a scenario where the
// operators can predict load accurately day to day, they can actually
// change the GV to the optimal value each day" (Section V-C).
//
// The predictor is a per-slot diurnal profile learner: utilization at
// each time-of-day slot is an exponentially weighted average over the
// corresponding slots of past days, scaled by a one-day-ahead peak
// estimate. It is deliberately simple — the point is to close the loop
// (history → forecast → GV choice), not to compete with production
// forecasters.
package forecast

import (
	"fmt"
	"time"

	"vmt/internal/stats"
)

// Forecaster learns a diurnal profile from observed utilization.
type Forecaster struct {
	slotDur time.Duration
	slots   int
	// profile[i] is the EWMA of utilization in slot i, normalized by
	// each day's peak; peakEWMA tracks the daily peak level.
	profile  []float64
	seen     []bool
	peakEWMA float64
	peakSeen bool
	alpha    float64
	days     int
}

// New returns a forecaster with the given slot duration (must divide
// 24h evenly) and smoothing factor alpha in (0,1]; larger alpha
// weights recent days more.
func New(slotDur time.Duration, alpha float64) (*Forecaster, error) {
	if slotDur <= 0 || (24*time.Hour)%slotDur != 0 {
		return nil, fmt.Errorf("forecast: slot duration %v must divide 24h", slotDur)
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("forecast: alpha %v out of (0,1]", alpha)
	}
	slots := int((24 * time.Hour) / slotDur)
	return &Forecaster{
		slotDur: slotDur,
		slots:   slots,
		profile: make([]float64, slots),
		seen:    make([]bool, slots),
		alpha:   alpha,
	}, nil
}

// ObserveDay feeds one day of utilization samples (length must equal
// the slot count) into the learner.
func (f *Forecaster) ObserveDay(day []float64) error {
	if len(day) != f.slots {
		return fmt.Errorf("forecast: day has %d samples, want %d", len(day), f.slots)
	}
	peak, err := stats.Max(day)
	if err != nil {
		return err
	}
	if peak <= 0 {
		return fmt.Errorf("forecast: day has no load")
	}
	for i, v := range day {
		if v < 0 {
			return fmt.Errorf("forecast: negative utilization %v at slot %d", v, i)
		}
		norm := v / peak
		if !f.seen[i] {
			f.profile[i] = norm
			f.seen[i] = true
		} else {
			f.profile[i] = (1-f.alpha)*f.profile[i] + f.alpha*norm
		}
	}
	if !f.peakSeen {
		f.peakEWMA = peak
		f.peakSeen = true
	} else {
		f.peakEWMA = (1-f.alpha)*f.peakEWMA + f.alpha*peak
	}
	f.days++
	return nil
}

// Days returns how many days have been observed.
func (f *Forecaster) Days() int { return f.days }

// PredictDay returns the next day's utilization forecast, one value
// per slot, clamped to [0,1]. It fails until at least one day has been
// observed.
func (f *Forecaster) PredictDay() ([]float64, error) {
	if f.days == 0 {
		return nil, fmt.Errorf("forecast: no history")
	}
	out := make([]float64, f.slots)
	for i := range out {
		out[i] = stats.Clamp(f.profile[i]*f.peakEWMA, 0, 1)
	}
	return out, nil
}

// MAE returns the mean absolute error of a forecast against the
// realized day.
func MAE(forecast, actual []float64) (float64, error) {
	if len(forecast) != len(actual) || len(forecast) == 0 {
		return 0, fmt.Errorf("forecast: need matching non-empty series")
	}
	var sum float64
	for i := range forecast {
		d := forecast[i] - actual[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(forecast)), nil
}
