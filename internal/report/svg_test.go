package report

import (
	"strings"
	"testing"
	"time"

	"vmt/internal/stats"
)

func chartSeries(vals ...float64) *stats.Series {
	s := stats.NewSeries(time.Hour)
	for _, v := range vals {
		s.Append(v)
	}
	return s
}

func TestLineChartRender(t *testing.T) {
	c := LineChart{
		Title:  "Cooling load",
		YLabel: "kW",
		Names:  []string{"rr", "vmt"},
		Series: []*stats.Series{chartSeries(10, 20, 30, 25), chartSeries(10, 18, 26, 24)},
		HLines: map[string]float64{"melt": 22},
	}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "Cooling load", "melt", "hours", "rr", "vmt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("polylines = %d, want 2", got)
	}
}

func TestLineChartValidation(t *testing.T) {
	var b strings.Builder
	if err := (LineChart{}).Render(&b); err == nil {
		t.Fatal("empty chart should fail")
	}
	if err := (LineChart{
		Names:  []string{"a"},
		Series: []*stats.Series{chartSeries(1)},
	}).Render(&b); err == nil {
		t.Fatal("single sample should fail")
	}
	if err := (LineChart{
		Names:  []string{"a", "b"},
		Series: []*stats.Series{chartSeries(1, 2), chartSeries(1, 2, 3)},
	}).Render(&b); err == nil {
		t.Fatal("misaligned series should fail")
	}
	if err := (LineChart{
		Names:  []string{"a"},
		Series: []*stats.Series{chartSeries(1, 2)},
		YMin:   5, YMax: 5,
	}).Render(&b); err == nil {
		t.Fatal("degenerate y range should fail")
	}
}

func TestLineChartEscapesTitle(t *testing.T) {
	c := LineChart{
		Title:  "a<b&c",
		Names:  []string{"x"},
		Series: []*stats.Series{chartSeries(1, 2)},
	}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "a<b&c") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(b.String(), "a&lt;b&amp;c") {
		t.Fatal("escaped title missing")
	}
}

func TestLineChartDownsamplesLongSeries(t *testing.T) {
	long := stats.NewSeries(time.Minute)
	for i := 0; i < 100_000; i++ {
		long.Append(float64(i % 100))
	}
	c := LineChart{Names: []string{"x"}, Series: []*stats.Series{long}}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	// A polyline with 100k points would be megabytes; downsampling
	// keeps the file modest.
	if b.Len() > 200_000 {
		t.Fatalf("SVG too large: %d bytes", b.Len())
	}
}

func TestSVGHeatmapRender(t *testing.T) {
	h := SVGHeatmap{
		Title: "melt",
		Grid:  [][]float64{{0, 0.5, 1}, {1, 0.5, 0}},
		Lo:    0, Hi: 1,
	}
	var b strings.Builder
	if err := h.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "<rect") || !strings.Contains(out, "melt") {
		t.Fatal("missing content")
	}
}

func TestSVGHeatmapValidation(t *testing.T) {
	var b strings.Builder
	if err := (SVGHeatmap{}).Render(&b); err == nil {
		t.Fatal("empty grid should fail")
	}
	if err := (SVGHeatmap{Grid: [][]float64{{1}}, Lo: 1, Hi: 1}).Render(&b); err == nil {
		t.Fatal("degenerate scale should fail")
	}
}

func TestRampColorEndpoints(t *testing.T) {
	lo := rampColor(0)
	hi := rampColor(1)
	mid := rampColor(0.5)
	if lo == hi || lo == mid || mid == hi {
		t.Fatalf("ramp not distinguishing: %s %s %s", lo, mid, hi)
	}
	for _, c := range []string{lo, mid, hi} {
		if len(c) != 7 || c[0] != '#' {
			t.Fatalf("bad color %q", c)
		}
	}
}

func TestTrimNum(t *testing.T) {
	cases := map[float64]string{
		2_500_000: "2.5M",
		25_000:    "25k",
		250:       "250",
		2.5:       "2.5",
	}
	for v, want := range cases {
		if got := trimNum(v); got != want {
			t.Errorf("trimNum(%v) = %q, want %q", v, got, want)
		}
	}
}
