package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"vmt/internal/stats"
)

// SVG chart rendering, stdlib only. Charts are deliberately plain —
// axes, gridlines, legend — and sized for README embedding.

// svgPalette cycles through distinguishable line colors.
var svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
	"#8c564b", "#17becf", "#7f7f7f",
}

// LineChart renders one or more aligned series as an SVG line chart
// with time (hours) on the x-axis.
type LineChart struct {
	Title  string
	YLabel string
	// Names and Series are parallel; series must share step and
	// length.
	Names  []string
	Series []*stats.Series
	// Width and Height in pixels (zero selects 720×360).
	Width, Height int
	// YMin/YMax clamp the y-axis; both zero auto-scales.
	YMin, YMax float64
	// HLines draws labeled horizontal reference lines (e.g. a melting
	// temperature).
	HLines map[string]float64
}

// Render writes the chart as SVG.
func (c LineChart) Render(w io.Writer) error {
	if len(c.Names) != len(c.Series) || len(c.Series) == 0 {
		return fmt.Errorf("report: chart needs matching names and series")
	}
	n := c.Series[0].Len()
	if n < 2 {
		return fmt.Errorf("report: chart needs at least two samples")
	}
	for i, s := range c.Series {
		if s.Len() != n || s.Step != c.Series[0].Step {
			return fmt.Errorf("report: series %d misaligned", i)
		}
	}
	width, height := c.Width, c.Height
	if width == 0 {
		width = 720
	}
	if height == 0 {
		height = 360
	}
	const marginL, marginR, marginT, marginB = 60, 16, 28, 40
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	yMin, yMax := c.YMin, c.YMax
	if yMin == 0 && yMax == 0 { //vmtlint:allow floateq zero-value "auto-scale" sentinel, exact by construction
		yMin, yMax = math.Inf(1), math.Inf(-1)
		for _, s := range c.Series {
			for _, v := range s.Values {
				yMin = math.Min(yMin, v)
				yMax = math.Max(yMax, v)
			}
		}
		for _, v := range c.HLines {
			yMin = math.Min(yMin, v)
			yMax = math.Max(yMax, v)
		}
		pad := (yMax - yMin) * 0.06
		if pad == 0 { //vmtlint:allow floateq exact guard for a perfectly flat series (yMax-yMin is exactly 0)
			pad = 1
		}
		yMin -= pad
		yMax += pad
	}
	if yMax <= yMin {
		return fmt.Errorf("report: degenerate y range [%v,%v]", yMin, yMax)
	}
	xMax := c.Series[0].TimeAt(n - 1).Hours()
	x0 := c.Series[0].Start.Hours()
	sx := func(h float64) float64 { return float64(marginL) + (h-x0)/(xMax-x0)*plotW }
	sy := func(v float64) float64 { return float64(marginT) + (yMax-v)/(yMax-yMin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="18" font-size="13" font-weight="bold">%s</text>`+"\n",
			marginL, escape(c.Title))
	}
	// Gridlines and axis labels.
	for i := 0; i <= 4; i++ {
		v := yMin + (yMax-yMin)*float64(i)/4
		y := sy(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, width-marginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+4, trimNum(v))
	}
	hTicks := 6
	for i := 0; i <= hTicks; i++ {
		h := x0 + (xMax-x0)*float64(i)/float64(hTicks)
		x := sx(h)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#eee"/>`+"\n",
			x, marginT, x, height-marginB)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			x, height-marginB+16, trimNum(h))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">hours</text>`+"\n",
		marginL+int(plotW/2), height-8)
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%d" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
			marginT+int(plotH/2), marginT+int(plotH/2), escape(c.YLabel))
	}
	// Reference lines.
	for label, v := range c.HLines {
		y := sy(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#888" stroke-dasharray="5,4"/>`+"\n",
			marginL, y, width-marginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" fill="#666">%s</text>`+"\n",
			width-marginR-120, y-4, escape(label))
	}
	// Series polylines (downsampled to ≤ 2 points per pixel).
	stride := n / (2 * int(plotW))
	if stride < 1 {
		stride = 1
	}
	for si, s := range c.Series {
		color := svgPalette[si%len(svgPalette)]
		var pts strings.Builder
		for i := 0; i < n; i += stride {
			fmt.Fprintf(&pts, "%.1f,%.1f ", sx(s.TimeAt(i).Hours()),
				sy(stats.Clamp(s.Values[i], yMin, yMax)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.TrimSpace(pts.String()), color)
		// Legend entry.
		lx := marginL + 8 + (si%4)*160
		ly := marginT + 4 + (si/4)*16
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly, lx+18, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", lx+22, ly+4, escape(c.Names[si]))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// SVGHeatmap renders a [row][col] grid as an SVG raster with a
// blue→red color ramp (rows top to bottom as given; use FlipRows for
// server-0-at-bottom).
type SVGHeatmap struct {
	Title  string
	Grid   [][]float64
	Lo, Hi float64
	// Width and Height in pixels (zero selects 720×360).
	Width, Height int
}

// Render writes the heat map as SVG.
func (h SVGHeatmap) Render(w io.Writer) error {
	if len(h.Grid) == 0 || len(h.Grid[0]) == 0 {
		return fmt.Errorf("report: empty heat map grid")
	}
	if h.Hi <= h.Lo {
		return fmt.Errorf("report: heat map scale hi %v must exceed lo %v", h.Hi, h.Lo)
	}
	width, height := h.Width, h.Height
	if width == 0 {
		width = 720
	}
	if height == 0 {
		height = 360
	}
	// Downsample to at most one cell per 2px.
	grid := downsampleGrid(h.Grid, height/2, width/2)
	rows, cols := len(grid), len(grid[0])
	const marginT = 26
	cellW := float64(width) / float64(cols)
	cellH := float64(height-marginT) / float64(rows)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	if h.Title != "" {
		fmt.Fprintf(&b, `<text x="4" y="16" font-weight="bold">%s</text>`+"\n", escape(h.Title))
	}
	for r, row := range grid {
		for c, v := range row {
			t := stats.Clamp((v-h.Lo)/(h.Hi-h.Lo), 0, 1)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.2f" height="%.2f" fill="%s"/>`+"\n",
				float64(c)*cellW, float64(marginT)+float64(r)*cellH, cellW+0.5, cellH+0.5, rampColor(t))
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// rampColor maps t in [0,1] onto a blue→yellow→red ramp.
func rampColor(t float64) string {
	var r, g, bl float64
	switch {
	case t < 0.5:
		f := t * 2
		r, g, bl = 40+f*215, 70+f*150, 200-f*160
	default:
		f := (t - 0.5) * 2
		r, g, bl = 255, 220-f*180, 40-f*30
	}
	return fmt.Sprintf("#%02x%02x%02x", int(r), int(g), int(bl))
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// trimNum formats an axis number compactly.
func trimNum(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case a >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
