// Package report renders simulation output for terminals and files:
// ASCII heat maps (the paper's Figures 9–11 and 14), aligned tables,
// and CSV series for external plotting.
package report

import (
	"fmt"
	"io"
	"strings"

	"vmt/internal/stats"
)

// heatRamp is the character ramp from cold to hot.
var heatRamp = []rune(" .:-=+*#%@")

// Heatmap renders a [row][col] grid as ASCII art, mapping values from
// lo..hi onto a density ramp. Rows are rendered top to bottom in input
// order; callers that want server 0 at the bottom (as in the paper's
// figures) should pass rows pre-reversed or use FlipRows.
type Heatmap struct {
	// Title is printed above the map.
	Title string
	// Grid is [row][col]; all rows must share a length.
	Grid [][]float64
	// Lo and Hi clamp the color scale (e.g. 10..50 °C or 0..1 melt).
	Lo, Hi float64
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// MaxCols downsamples wide grids to at most this many columns
	// (zero = 120).
	MaxCols int
	// MaxRows downsamples tall grids to at most this many rows
	// (zero = 40).
	MaxRows int
}

// Render writes the heat map to w.
func (h Heatmap) Render(w io.Writer) error {
	if len(h.Grid) == 0 || len(h.Grid[0]) == 0 {
		return fmt.Errorf("report: empty heat map grid")
	}
	if h.Hi <= h.Lo {
		return fmt.Errorf("report: heat map scale hi %v must exceed lo %v", h.Hi, h.Lo)
	}
	cols := len(h.Grid[0])
	for i, row := range h.Grid {
		if len(row) != cols {
			return fmt.Errorf("report: ragged grid at row %d", i)
		}
	}
	maxCols := h.MaxCols
	if maxCols == 0 {
		maxCols = 120
	}
	maxRows := h.MaxRows
	if maxRows == 0 {
		maxRows = 40
	}
	grid := downsampleGrid(h.Grid, maxRows, maxCols)

	if h.Title != "" {
		fmt.Fprintf(w, "%s\n", h.Title)
	}
	for _, row := range grid {
		var b strings.Builder
		for _, v := range row {
			t := stats.Clamp((v-h.Lo)/(h.Hi-h.Lo), 0, 1)
			b.WriteRune(heatRamp[int(t*float64(len(heatRamp)-1)+0.5)])
		}
		fmt.Fprintf(w, "|%s|\n", b.String())
	}
	if h.XLabel != "" || h.YLabel != "" {
		fmt.Fprintf(w, "x: %s, y: %s, scale %.3g..%.3g (%q..%q)\n",
			h.XLabel, h.YLabel, h.Lo, h.Hi, heatRamp[0], heatRamp[len(heatRamp)-1])
	}
	return nil
}

// FlipRows returns the grid with row order reversed (server 0 at the
// bottom, matching the paper's heat maps).
func FlipRows(grid [][]float64) [][]float64 {
	out := make([][]float64, len(grid))
	for i := range grid {
		out[i] = grid[len(grid)-1-i]
	}
	return out
}

// Transpose converts a [sample][server] recording into [server][sample]
// rows suitable for a time-on-x heat map.
func Transpose(grid [][]float64) [][]float64 {
	if len(grid) == 0 {
		return nil
	}
	rows := len(grid[0])
	out := make([][]float64, rows)
	for r := range out {
		out[r] = make([]float64, len(grid))
		for c := range grid {
			out[r][c] = grid[c][r]
		}
	}
	return out
}

// downsampleGrid shrinks a grid by averaging blocks.
func downsampleGrid(grid [][]float64, maxRows, maxCols int) [][]float64 {
	rows, cols := len(grid), len(grid[0])
	outRows, outCols := rows, cols
	if outRows > maxRows {
		outRows = maxRows
	}
	if outCols > maxCols {
		outCols = maxCols
	}
	out := make([][]float64, outRows)
	for r := range out {
		out[r] = make([]float64, outCols)
		r0, r1 := r*rows/outRows, (r+1)*rows/outRows
		if r1 == r0 {
			r1 = r0 + 1
		}
		for c := range out[r] {
			c0, c1 := c*cols/outCols, (c+1)*cols/outCols
			if c1 == c0 {
				c1 = c0 + 1
			}
			var sum float64
			for i := r0; i < r1; i++ {
				for j := c0; j < c1; j++ {
					sum += grid[i][j]
				}
			}
			out[r][c] = sum / float64((r1-r0)*(c1-c0))
		}
	}
	return out
}

// Table renders aligned rows with a header.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells formatted with fmt.Sprint.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the aligned table to w.
func (t Table) Render(w io.Writer) error {
	if len(t.Headers) == 0 {
		return fmt.Errorf("report: table needs headers")
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		if len(row) != len(t.Headers) {
			return fmt.Errorf("report: row width %d != header width %d", len(row), len(t.Headers))
		}
		for i, c := range row {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	rules := make([]string, len(t.Headers))
	for i, wd := range widths {
		rules[i] = strings.Repeat("-", wd)
	}
	line(rules)
	for _, row := range t.Rows {
		line(row)
	}
	return nil
}

func pad(s string, w int) string {
	if n := len([]rune(s)); n < w {
		return s + strings.Repeat(" ", w-n)
	}
	return s
}

// WriteCSV writes named columns of equal length as CSV.
func WriteCSV(w io.Writer, headers []string, cols [][]float64) error {
	if len(headers) != len(cols) || len(cols) == 0 {
		return fmt.Errorf("report: need matching headers and columns")
	}
	n := len(cols[0])
	for i, c := range cols {
		if len(c) != n {
			return fmt.Errorf("report: column %d length %d != %d", i, len(c), n)
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for r := 0; r < n; r++ {
		cells := make([]string, len(cols))
		for c := range cols {
			cells[c] = fmt.Sprintf("%g", cols[c][r])
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// SeriesCSV writes one or more equally sampled series with a leading
// hours column.
func SeriesCSV(w io.Writer, names []string, series []*stats.Series) error {
	if len(names) != len(series) || len(series) == 0 {
		return fmt.Errorf("report: need matching names and series")
	}
	n := series[0].Len()
	cols := make([][]float64, 0, len(series)+1)
	hours := make([]float64, n)
	for i := 0; i < n; i++ {
		hours[i] = series[0].TimeAt(i).Hours()
	}
	cols = append(cols, hours)
	for i, s := range series {
		if s.Len() != n || s.Step != series[0].Step {
			return fmt.Errorf("report: series %d not aligned", i)
		}
		cols = append(cols, s.Values)
	}
	return WriteCSV(w, append([]string{"hours"}, names...), cols)
}
