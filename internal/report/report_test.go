package report

import (
	"strings"
	"testing"
	"time"

	"vmt/internal/stats"
)

func TestHeatmapRender(t *testing.T) {
	h := Heatmap{
		Title: "test",
		Grid: [][]float64{
			{0, 5, 10},
			{10, 5, 0},
		},
		Lo: 0, Hi: 10,
		XLabel: "time", YLabel: "server",
	}
	var b strings.Builder
	if err := h.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "test") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + 2 rows + axis line
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Cold cell uses the first ramp char, hot cell the last.
	if !strings.Contains(lines[1], "|") {
		t.Fatal("rows should be framed")
	}
	if lines[1][1] != ' ' || lines[1][3] != '@' {
		t.Fatalf("ramp extremes wrong in %q", lines[1])
	}
}

func TestHeatmapValidation(t *testing.T) {
	var b strings.Builder
	if err := (Heatmap{}).Render(&b); err == nil {
		t.Fatal("empty grid should fail")
	}
	if err := (Heatmap{Grid: [][]float64{{1}}, Lo: 1, Hi: 1}).Render(&b); err == nil {
		t.Fatal("degenerate scale should fail")
	}
	if err := (Heatmap{Grid: [][]float64{{1, 2}, {1}}, Lo: 0, Hi: 1}).Render(&b); err == nil {
		t.Fatal("ragged grid should fail")
	}
}

func TestHeatmapDownsamples(t *testing.T) {
	grid := make([][]float64, 100)
	for i := range grid {
		grid[i] = make([]float64, 500)
		for j := range grid[i] {
			grid[i][j] = float64(i)
		}
	}
	h := Heatmap{Grid: grid, Lo: 0, Hi: 100, MaxRows: 10, MaxCols: 50}
	var b strings.Builder
	if err := h.Render(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 10 {
		t.Fatalf("rows = %d, want 10", len(lines))
	}
	if got := len(lines[0]); got != 52 { // 50 cells + 2 frame chars
		t.Fatalf("cols = %d, want 52", got)
	}
}

func TestFlipAndTranspose(t *testing.T) {
	grid := [][]float64{{1, 2}, {3, 4}, {5, 6}} // [sample][server]
	tr := Transpose(grid)                       // [server][sample]
	if len(tr) != 2 || len(tr[0]) != 3 {
		t.Fatalf("transpose shape %dx%d", len(tr), len(tr[0]))
	}
	if tr[0][0] != 1 || tr[0][2] != 5 || tr[1][1] != 4 {
		t.Fatalf("transpose values wrong: %v", tr)
	}
	fl := FlipRows(tr)
	if fl[0][0] != 2 || fl[1][0] != 1 {
		t.Fatalf("flip wrong: %v", fl)
	}
	if Transpose(nil) != nil {
		t.Fatal("transpose of empty should be nil")
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "Table I", Headers: []string{"Workload", "Power", "Class"}}
	tb.AddRow("WebSearch", 37.2, "hot")
	tb.AddRow("VirusScan", 3.4, "cold")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table I", "Workload", "WebSearch", "37.2", "cold", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableValidation(t *testing.T) {
	var b strings.Builder
	if err := (Table{}).Render(&b); err == nil {
		t.Fatal("headerless table should fail")
	}
	tb := Table{Headers: []string{"a", "b"}}
	tb.AddRow(1)
	if err := tb.Render(&b); err == nil {
		t.Fatal("ragged row should fail")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"x", "y"}, [][]float64{{1, 2}, {3.5, 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,3.5\n2,4\n"
	if b.String() != want {
		t.Fatalf("got %q, want %q", b.String(), want)
	}
	if err := WriteCSV(&b, []string{"x"}, [][]float64{{1}, {2}}); err == nil {
		t.Fatal("mismatched headers should fail")
	}
	if err := WriteCSV(&b, []string{"x", "y"}, [][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged columns should fail")
	}
}

func TestSeriesCSV(t *testing.T) {
	a := stats.NewSeries(30 * time.Minute)
	a.Append(1)
	a.Append(2)
	bSeries := stats.NewSeries(30 * time.Minute)
	bSeries.Append(10)
	bSeries.Append(20)
	var b strings.Builder
	if err := SeriesCSV(&b, []string{"a", "b"}, []*stats.Series{a, bSeries}); err != nil {
		t.Fatal(err)
	}
	want := "hours,a,b\n0,1,10\n0.5,2,20\n"
	if b.String() != want {
		t.Fatalf("got %q, want %q", b.String(), want)
	}
	short := stats.NewSeries(30 * time.Minute)
	short.Append(1)
	if err := SeriesCSV(&b, []string{"a", "b"}, []*stats.Series{a, short}); err == nil {
		t.Fatal("misaligned series should fail")
	}
}
