package vmt

import (
	"sync"

	"vmt/internal/telemetry"
)

// The default observability sinks let the command-line tools observe
// every run of a process — including runs the sweep helpers construct
// internally — without threading a registry through each experiment
// signature. Run and RunMany fall back to these only for
// configurations whose own telemetry fields are nil.
var (
	obsMu          sync.RWMutex
	defaultMetrics *telemetry.Registry
	defaultTracer  telemetry.Tracer
	defaultStream  *telemetry.Stream
	defaultFleet   *telemetry.FleetPublisher
	defaultProfile bool
)

// Observers bundles the process-wide fallback telemetry sinks.
type Observers struct {
	// Metrics receives counters/gauges/histograms (nil disables).
	Metrics *telemetry.Registry
	// Tracer receives one span event per engine band per tick.
	Tracer telemetry.Tracer
	// Stream receives windowed time-series telemetry (see
	// Config.Stream).
	Stream *telemetry.Stream
	// Fleet receives per-tick fleet snapshots (see Config.Fleet).
	Fleet *telemetry.FleetPublisher
	// ProfileBands enables per-band wall/alloc profiling for runs that
	// do not set Config.ProfileBands themselves.
	ProfileBands bool
}

// SetDefaultObservers installs process-wide fallback telemetry sinks:
// any subsequent Run whose Config leaves the corresponding field nil
// (or false, for ProfileBands) uses these instead. Pass the zero
// Observers to clear. Every sink must be safe for concurrent use,
// since RunMany shares them across workers; *telemetry.Registry,
// *telemetry.Recorder, *telemetry.Stream, and *telemetry.FleetPublisher
// all are.
//
// This is intended for process-scoped wiring (the cliobs CLI flags);
// library callers should prefer the per-Config fields.
func SetDefaultObservers(o Observers) {
	obsMu.Lock()
	defer obsMu.Unlock()
	defaultMetrics = o.Metrics
	defaultTracer = o.Tracer
	defaultStream = o.Stream
	defaultFleet = o.Fleet
	defaultProfile = o.ProfileBands
}

// SetDefaultObservability installs fallback Metrics and Tracer sinks,
// preserving any default Stream/Fleet/ProfileBands already installed.
// Kept for callers predating SetDefaultObservers.
func SetDefaultObservability(m *telemetry.Registry, t telemetry.Tracer) {
	obsMu.Lock()
	defer obsMu.Unlock()
	defaultMetrics = m
	defaultTracer = t
}

// defaultObservers returns the current process-wide fallbacks.
func defaultObservers() Observers {
	obsMu.RLock()
	defer obsMu.RUnlock()
	return Observers{
		Metrics:      defaultMetrics,
		Tracer:       defaultTracer,
		Stream:       defaultStream,
		Fleet:        defaultFleet,
		ProfileBands: defaultProfile,
	}
}

// withDefaultObservability resolves cfg's nil telemetry fields against
// the process defaults.
func (c Config) withDefaultObservability() Config {
	if c.Metrics != nil && c.Tracer != nil && c.Stream != nil && c.Fleet != nil && c.ProfileBands {
		return c
	}
	d := defaultObservers()
	if c.Metrics == nil {
		c.Metrics = d.Metrics
	}
	if c.Tracer == nil && d.Tracer != nil {
		c.Tracer = d.Tracer
	}
	if c.Stream == nil {
		c.Stream = d.Stream
	}
	if c.Fleet == nil {
		c.Fleet = d.Fleet
	}
	if !c.ProfileBands {
		c.ProfileBands = d.ProfileBands
	}
	return c
}
