package vmt

import (
	"sync"

	"vmt/internal/telemetry"
)

// The default observability sinks let the command-line tools observe
// every run of a process — including runs the sweep helpers construct
// internally — without threading a registry through each experiment
// signature. Run and RunMany fall back to these only for
// configurations whose own Metrics/Tracer fields are nil.
var (
	obsMu          sync.RWMutex
	defaultMetrics *telemetry.Registry
	defaultTracer  telemetry.Tracer
)

// SetDefaultObservability installs process-wide fallback telemetry
// sinks: any subsequent Run whose Config leaves Metrics (resp. Tracer)
// nil uses these instead. Pass nils to clear. Both sinks must be safe
// for concurrent use, since RunMany shares them across workers;
// *telemetry.Registry and *telemetry.Recorder both are.
//
// This is intended for process-scoped wiring (the -metrics/-trace CLI
// flags); library callers should prefer the per-Config fields.
func SetDefaultObservability(m *telemetry.Registry, t telemetry.Tracer) {
	obsMu.Lock()
	defer obsMu.Unlock()
	defaultMetrics = m
	defaultTracer = t
}

// withDefaultObservability resolves cfg's nil telemetry fields against
// the process defaults.
func (c Config) withDefaultObservability() Config {
	if c.Metrics != nil && c.Tracer != nil {
		return c
	}
	obsMu.RLock()
	defer obsMu.RUnlock()
	if c.Metrics == nil {
		c.Metrics = defaultMetrics
	}
	if c.Tracer == nil && defaultTracer != nil {
		c.Tracer = defaultTracer
	}
	return c
}
