package vmt

import (
	"bytes"
	"strings"
	"testing"

	"vmt/internal/trace"
)

func TestResultJSONRoundTrip(t *testing.T) {
	cfg := Scenario(4, PolicyVMTTA, 22)
	cfg.Trace = smallTrace()
	cfg.RecordGrids = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Config.Policy != PolicyVMTTA || back.Config.Servers != 4 || back.Config.GV != 22 {
		t.Fatalf("config fields lost: %+v", back.Config)
	}
	if back.CoolingLoadW.Len() != res.CoolingLoadW.Len() {
		t.Fatal("series length lost")
	}
	for i, v := range res.CoolingLoadW.Values {
		if back.CoolingLoadW.Values[i] != v {
			t.Fatalf("cooling value %d changed", i)
		}
	}
	if back.HotGroupTempC == nil {
		t.Fatal("hot group series lost")
	}
	if back.PeakCoolingW() != res.PeakCoolingW() {
		t.Fatal("peak changed across round trip")
	}
	if len(back.AirTempGrid) != len(res.AirTempGrid) {
		t.Fatal("grids lost")
	}
}

func TestResultJSONOmitsAbsentSeries(t *testing.T) {
	cfg := BaselineScenario(3)
	cfg.Trace = smallTrace()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "hot_group_temp_c") {
		t.Fatal("baseline export should omit hot-group series")
	}
	back, err := ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.HotGroupTempC != nil {
		t.Fatal("absent series should stay nil")
	}
}

func TestReadResultJSONErrors(t *testing.T) {
	if _, err := ReadResultJSON(strings.NewReader("{garbage")); err == nil {
		t.Fatal("bad json should fail")
	}
	if _, err := ReadResultJSON(strings.NewReader(`{"step_seconds":0}`)); err == nil {
		t.Fatal("zero step should fail")
	}
	if _, err := ReadResultJSON(strings.NewReader(`{"step_seconds":60,"series":{}}`)); err == nil {
		t.Fatal("missing cooling series should fail")
	}
}

func TestCustomTraceDrivesRun(t *testing.T) {
	// A flat 50% trace: cooling load should settle near the implied
	// steady state and stay flat.
	var lines strings.Builder
	for i := 0; i < 12*60; i++ {
		lines.WriteString("0.5\n")
	}
	tr, err := trace.FromReader(strings.NewReader(lines.String()), 60_000_000_000) // 1 min
	if err != nil {
		t.Fatal(err)
	}
	cfg := BaselineScenario(4)
	cfg.CustomTrace = tr
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := res.CoolingLoadW.Len()
	if n != 12*60-1 {
		t.Fatalf("samples = %d", n)
	}
	// After warm-up, the load is flat.
	late := res.CoolingLoadW.Values[n-1]
	mid := res.CoolingLoadW.Values[n-120]
	if diff := late - mid; diff > 10 || diff < -10 {
		t.Fatalf("flat trace should give flat load: %v vs %v", mid, late)
	}
	// Custom trace too short is rejected.
	short, err := trace.FromReader(strings.NewReader("0.5\n0.5\n"), 60_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	_ = short
	bad := BaselineScenario(2)
	bad.CustomTrace = nil
	bad.Trace.Days = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("bad spec without custom trace should fail")
	}
}
