// Capacity planning: turn a measured peak cooling reduction into
// dollars and servers.
//
// A datacenter operator deciding whether to deploy VMT cares about two
// oversubscription options (Section V-E): build the next facility with
// a smaller cooling plant, or pack more servers under the existing
// one. This example measures the reduction on a simulated cluster,
// then prices both options for a 25 MW facility — including the
// conservative variant an operator would actually commit to, and the
// counterfactual cost of achieving the same effect with exotic
// low-melting-point n-paraffin instead of VMT.
//
//	go run ./examples/capacityplan
package main

import (
	"fmt"
	"log"

	"vmt"
)

func main() {
	// Step 1: measure. A 100-server pilot cluster is enough to
	// estimate the reduction; the TCO model scales it to the facility.
	fmt.Println("Measuring peak cooling reduction on a 100-server pilot (VMT-WA, GV=22)...")
	reduction, err := vmt.PeakReductionPct(vmt.Scenario(100, vmt.PolicyVMTWA, 22))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  measured reduction: %.1f%%\n\n", reduction)

	// Step 2: price it.
	study, err := vmt.RunTCOStudy(reduction)
	if err != nil {
		log.Fatal(err)
	}
	p := study.Params
	fmt.Printf("Facility: %.0f MW critical power, %d servers, cooling depreciation $%.0f/MW over %g years\n\n",
		p.CriticalPowerMW, p.Servers(), p.CoolingCostUSDPerMW(), p.CoolingLifetimeYears)

	fmt.Printf("Option A — smaller cooling plant (full %.1f%% reduction):\n", study.Best.ReductionPct)
	fmt.Printf("  cooling system sized for %.1f MW instead of %.0f MW\n",
		study.Best.CoolingLoadMW, p.CriticalPowerMW)
	fmt.Printf("  lifetime savings: $%.0f gross, $%.0f net of wax\n\n",
		study.Best.GrossCoolingSavingsUSD, study.Best.SmallerCoolingSavingsUSD)

	fmt.Printf("Option B — more servers under the same cooling budget:\n")
	fmt.Printf("  +%.1f%% servers = %d fleet-wide (%d per 1,000-server cluster)\n\n",
		study.Best.ExtraServersPct, study.Best.ExtraServers, study.Best.ExtraServersPerCluster)

	fmt.Printf("Conservative plan (%.0f%% of peak, guarding against load variation):\n", study.ConservativePct)
	fmt.Printf("  savings $%.0f, or +%d servers\n\n",
		study.Conservative.GrossCoolingSavingsUSD, study.Conservative.ExtraServers)

	fmt.Printf("Counterfactual — buy n-paraffin with a low enough melting point for passive TTS:\n")
	fmt.Printf("  $%.0f for the fleet vs $%.0f for commercial wax (%.0fx), exceeding the savings it enables\n",
		study.NParaffinUSD, study.CommercialUSD, study.NParaffinUSD/study.CommercialUSD)
}
