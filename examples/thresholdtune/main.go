// Threshold tuning: pick the VMT-WA wax threshold for a deployment.
//
// VMT-WA declares a server "fully melted" when its reported melt
// fraction crosses the wax threshold, and reacts by growing the hot
// group. Too low a threshold gives up storage capacity; 1.00 is
// brittle because small fluctuations refreeze a sliver of wax. The
// paper (Figure 17) finds a plateau at 0.95 and fixes 0.98. This
// example reruns that sweep and prints the operator guidance.
//
//	go run ./examples/thresholdtune
package main

import (
	"fmt"
	"log"

	"vmt"
)

func main() {
	const servers = 100
	const gv = 22
	thresholds := []float64{0.85, 0.90, 0.95, 0.98, 0.99, 1.00}

	fmt.Printf("Sweeping the VMT-WA wax threshold on %d servers at GV=%d...\n\n", servers, gv)
	pts, err := vmt.WaxThresholdSweep(servers, gv, thresholds)
	if err != nil {
		log.Fatal(err)
	}

	best := pts[0]
	for _, p := range pts {
		if p.ReductionPct > best.ReductionPct {
			best = p
		}
	}
	fmt.Println("Threshold  Peak reduction")
	for _, p := range pts {
		marker := ""
		if p.ReductionPct >= best.ReductionPct-0.5 {
			marker = "  <- on the plateau"
		}
		fmt.Printf("   %.2f       %5.1f%%%s\n", p.WaxThreshold, p.ReductionPct, marker)
	}

	fmt.Println("\nGuidance: any threshold on the plateau preserves the full benefit;")
	fmt.Println("pick the lowest plateau value (more robust to sensor noise and small")
	fmt.Println("temperature fluctuations than 1.00). The paper operates at 0.98 and")
	fmt.Println("notes 0.95 loses nothing (Figure 17).")
}
