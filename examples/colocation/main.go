// Colocation study: is it safe to pack hot and cold services onto the
// same servers?
//
// VMT only works if a scheduler may colocate, say, Web Search with
// Data Caching on one machine without wrecking tail latency. This
// example reproduces the Section IV-C study (Figure 6): latency versus
// load for homogeneous and mixed core allocations on a 6-core CPU,
// using the analytic queueing-plus-interference model.
//
//	go run ./examples/colocation
package main

import (
	"fmt"
	"log"

	"vmt/internal/qos"
)

func main() {
	f := qos.PaperFixture()

	fmt.Println("Data Caching latency (ms) vs load, homogeneous vs colocated with Web Search")
	fmt.Println("RPS/core    6C mean   2C+Search   4C+Search")
	caching, err := f.CachingCurves([]float64{25_000, 35_000, 45_000, 55_000, 60_000})
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range caching {
		fmt.Printf("%8.0f   %7.3f   %9.3f   %9.3f\n", pt.RPSPerCore,
			pt.Lat["6C"].MeanS*1000, pt.Lat["2C+Search"].MeanS*1000, pt.Lat["4C+Search"].MeanS*1000)
	}

	fmt.Println("\nWeb Search latency (s) vs clients, homogeneous vs colocated with Data Caching")
	fmt.Println("Clients/core   6C mean   2C+Caching   4C+Caching")
	search, err := f.SearchCurves([]float64{10, 20, 30, 37.5, 45, 50})
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range search {
		fmt.Printf("%11.1f   %7.3f   %10.3f   %10.3f\n", pt.ClientsPerCore,
			pt.Lat["6C"].MeanS, pt.Lat["2C+Caching"].MeanS, pt.Lat["4C+Caching"].MeanS)
	}

	fmt.Println("\nReading the curves (the paper's Section IV-C conclusions):")
	fmt.Println(" * Caching tolerates colocation: in the middle load range a mixture")
	fmt.Println("   is similar or better than six homogeneous cores, because caching's")
	fmt.Println("   own memory-bandwidth contention rivals what search inflicts.")
	fmt.Println(" * Search pays a visible penalty when colocated (cache interference),")
	fmt.Println("   manageable with BubbleUp/Protean-Code-style contention mitigation.")
}
