// Quickstart: run the headline VMT experiment end to end.
//
// This example simulates the paper's 1,000-server cluster over the
// two-day worst-case trace three times — round robin (the TTS
// baseline), VMT-TA, and VMT-WA at the best grouping value — and
// reports the peak cooling load reduction that the paper headlines at
// 12.8%.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vmt"
)

func main() {
	const servers = 1000
	const gv = 22 // the best grouping value for the paper's mix

	baseline, err := vmt.Run(vmt.BaselineScenario(servers))
	if err != nil {
		log.Fatal(err)
	}
	baseSum, err := baseline.CoolingSummary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Round robin (TTS baseline): peak cooling %.1f kW at hour %.1f\n",
		baseSum.PeakW/1000, baseSum.PeakAt.Hours())
	peakMelt, _, _ := baseline.MeanMeltFrac.Peak()
	fmt.Printf("  wax melted under round robin: %.2f%% — TTS alone cannot help here\n\n",
		peakMelt*100)

	for _, policy := range []vmt.Policy{vmt.PolicyVMTTA, vmt.PolicyVMTWA} {
		res, err := vmt.Run(vmt.Scenario(servers, policy, gv))
		if err != nil {
			log.Fatal(err)
		}
		sum, err := res.CoolingSummary()
		if err != nil {
			log.Fatal(err)
		}
		reduction := (baseSum.PeakW - sum.PeakW) / baseSum.PeakW * 100
		melt, _, _ := res.MeanMeltFrac.Peak()
		fmt.Printf("%s at GV=%d: peak cooling %.1f kW (−%.1f%% vs baseline), wax melted %.0f%%\n",
			policy, gv, sum.PeakW/1000, reduction, melt*100)
	}

	fmt.Println("\nThe paper reports a 12.8% peak cooling load reduction for both")
	fmt.Println("policies at GV=22 (Figures 13 and 16); this reproduction lands")
	fmt.Println("within a point of that with a calibrated, not identical, substrate.")
}
