// Seasons: why a tunable melting temperature matters.
//
// A wax deployment is sized once, but the datacenter's ambient
// conditions change season to season and its workloads drift over the
// servers' lifetime (the paper's Section I motivations). This example
// sweeps both conditions and shows that passive TTS only works in a
// narrow band, while VMT tracks the band by retuning its grouping
// value in software — no wax swap required.
//
//	go run ./examples/seasons
package main

import (
	"fmt"
	"log"

	"vmt"
)

func main() {
	const servers = 100
	grid := vmt.DefaultGVGrid()

	fmt.Println("Sweep 1: room supply (inlet) temperature — 'season to season'")
	fmt.Println("Inlet °C   TTS (fixed wax)   VMT (retuned)   best GV")
	ambient, err := vmt.AmbientSweep(servers, []float64{18, 20, 22, 24, 26}, grid)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range ambient {
		fmt.Printf("%7.0f    %10.1f%%      %10.1f%%     %5g\n",
			p.Condition, p.TTSReductionPct, p.VMTReductionPct, p.BestGV)
	}

	fmt.Println("\nSweep 2: workload power drift — 'over the server lifetime'")
	fmt.Println("Power ×    TTS (fixed wax)   VMT (retuned)   best GV")
	drift, err := vmt.DriftSweep(servers, []float64{1.2, 1.35, 1.5, 1.65, 1.8}, grid)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range drift {
		fmt.Printf("%7.2f    %10.1f%%      %10.1f%%     %5g\n",
			p.Condition, p.TTSReductionPct, p.VMTReductionPct, p.BestGV)
	}

	fmt.Println("\nReading: the fixed 35.7 °C wax only pays off where balanced")
	fmt.Println("placement happens to cross its melting point; everywhere cooler,")
	fmt.Println("TTS is stranded at 0% while VMT keeps melting by concentrating")
	fmt.Println("hot jobs — and where passive melting is already too eager, VMT")
	fmt.Println("degenerates gracefully to balanced placement (GV → PMT).")
}
