// Command traced shows the programmatic telemetry API: attach a
// metrics registry and a recording tracer to a run, print the headline
// counters, and export a Chrome trace_event file that
// chrome://tracing or https://ui.perfetto.dev can load.
//
//	go run ./examples/traced
package main

import (
	"fmt"
	"os"

	"vmt"
	"vmt/internal/telemetry"
)

func main() {
	cfg := vmt.Scenario(50, vmt.PolicyVMTWA, 22)
	cfg.Metrics = telemetry.NewRegistry()
	rec := telemetry.NewRecorder()
	cfg.Tracer = rec

	res, err := vmt.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traced: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("peak cooling load: %.1f kW\n", res.PeakCoolingW()/1000)
	fmt.Printf("spans recorded:    %d\n", rec.Len())

	// Counters accumulate across the whole run; the registry snapshot
	// is a stable, name-sorted view.
	snap := cfg.Metrics.Snapshot()
	for _, c := range snap.Counters {
		fmt.Printf("%-28s %d\n", c.Name, c.Value)
	}
	for _, h := range snap.Histograms {
		fmt.Printf("%-28s count=%d sum=%.1f\n", h.Name, h.Count, h.Sum)
	}

	f, err := os.Create("trace.json")
	if err != nil {
		fmt.Fprintf(os.Stderr, "traced: %v\n", err)
		os.Exit(1)
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		fmt.Fprintf(os.Stderr, "traced: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "traced: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("wrote trace.json — open it in chrome://tracing or ui.perfetto.dev")
}
