// Day-ahead operation: the closed loop a production deployment would
// actually run.
//
// Section V-C of the paper observes that operators who can predict
// load "can actually change the GV to the optimal value each day", and
// that VMT-WA makes the risk of a mistuned day survivable. This
// example runs that loop over a regime-shift week — three mild days,
// then three hot days — and prints what the controller chose, what it
// earned, and what it cost on the one day the forecast could not see
// coming.
//
//	go run ./examples/dayahead
package main

import (
	"fmt"
	"log"

	"vmt"
)

func main() {
	week := []float64{0.75, 0.76, 0.74, 0.95, 0.94, 0.95}
	grid := []float64{16, 18, 20, 22, 24}

	fmt.Println("Running the day-ahead loop: observe → forecast → tune GV → retune at midnight")
	fmt.Printf("Week of daily peaks: %v (regime shift after day 2)\n\n", week)

	st, err := vmt.RunAdaptiveGVStudy(100, 50, week, grid)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Forecast quality: %.3f mean absolute utilization error, one day ahead\n", st.ForecastMAE)
	fmt.Printf("Hindsight-best static GV for the whole week: %g\n\n", st.StaticGV)

	fmt.Println("Day  Peak   Chosen GV   Adaptive   Static(best)")
	for d := range st.DayPeaks {
		marker := ""
		switch {
		case st.AdaptiveDaily[d] > st.StaticDaily[d]+0.5:
			marker = "  <- adaptation wins"
		case st.AdaptiveDaily[d] < st.StaticDaily[d]-0.5:
			marker = "  <- forecast miss (regime shift)"
		}
		fmt.Printf("%3d  %.2f   %6g      %5.1f%%     %5.1f%%%s\n",
			d, st.DayPeaks[d], st.ChosenGVs[d],
			st.AdaptiveDaily[d], st.StaticDaily[d], marker)
	}
	fmt.Printf("\nMean daily peak reduction: adaptive %.2f%% vs static %.2f%%\n",
		st.MeanAdaptivePct, st.MeanStaticPct)

	fmt.Println("\nReading: on mild days the controller concentrates harder (lower GV)")
	fmt.Println("and collects reductions the compromise static value leaves behind;")
	fmt.Println("it tracks the regime change within one day. The transition day is")
	fmt.Println("the price of forecasting — wax-aware placement and the tuner's 10%")
	fmt.Println("risk margin keep it from going to zero, the Section V-C trade-off.")
}
