package vmt

import (
	"fmt"
	"time"

	"vmt/internal/experiment"
	"vmt/internal/fault"
	"vmt/internal/topology"
	"vmt/internal/trace"
)

// This file holds the spec builders: each root study's declarative
// form, sharable with cmd/vmtsweep -spec (encode one with
// experiment.Spec.Encode to get a runnable spec file). The studies
// execute these through RunSpecResults and keep their original typed
// reducers, so outputs are bit-identical to the pre-engine code.

// baselineRR is the shared round-robin reference every study measures
// against: the prior TTS work's baseline scheduler, no grouping value.
func baselineRR() experiment.Settings {
	return experiment.Settings{"policy": string(PolicyRoundRobin), "gv": 0.0}
}

// GVSweepSpec is the declarative form of GVSweep (Figure 18): peak
// reduction versus GV against one shared round-robin baseline.
func GVSweepSpec(servers int, policy Policy, gvs []float64) experiment.Spec {
	return experiment.Spec{
		Name:        "gv-sweep",
		Description: "Peak cooling load reduction vs GV (Figure 18)",
		Base:        experiment.Settings{"servers": servers, "policy": string(policy)},
		Axes:        []experiment.Axis{{Name: "gv", Values: floatsToAny(gvs)}},
		Baseline:    &experiment.Baseline{Set: baselineRR()},
		Reducer:     experiment.ReducePeakReduction,
	}
}

// WaxThresholdSweepSpec is the declarative form of WaxThresholdSweep
// (Figure 17): VMT-WA peak reduction as the wax threshold varies.
func WaxThresholdSweepSpec(servers int, gv float64, thresholds []float64) experiment.Spec {
	return experiment.Spec{
		Name:        "wax-threshold-sweep",
		Description: "Peak reduction vs wax threshold (Figure 17)",
		Base: experiment.Settings{
			"servers": servers, "policy": string(PolicyVMTWA), "gv": gv,
		},
		Axes:     []experiment.Axis{{Name: "wax_threshold", Values: floatsToAny(thresholds)}},
		Baseline: &experiment.Baseline{Set: baselineRR()},
		Reducer:  experiment.ReducePeakReduction,
	}
}

// InletVariationSpec is the declarative form of InletVariationStudy
// (Figures 19–20): peak reduction vs GV under inlet variation,
// averaged over seeds. The baseline depends only on the inlet draw —
// it varies with stdev and seed but is shared across the GV axis.
func InletVariationSpec(servers int, policy Policy, gvs, stdevs []float64, runs int) experiment.Spec {
	seeds := make([]any, runs)
	for r := 0; r < runs; r++ {
		seeds[r] = float64(r + 1)
	}
	return experiment.Spec{
		Name:        "inlet-variation",
		Description: "Peak reduction vs GV under inlet variation, seed-averaged (Figures 19-20)",
		Base:        experiment.Settings{"servers": servers, "policy": string(policy)},
		Axes: []experiment.Axis{
			{Name: "inlet_stdev_c", Values: floatsToAny(stdevs)},
			{Name: "gv", Values: floatsToAny(gvs)},
			{Name: "seed", Values: seeds},
		},
		Baseline: &experiment.Baseline{
			Set:  baselineRR(),
			Vary: []string{"inlet_stdev_c", "seed"},
		},
		Reducer:  experiment.ReducePeakReductionMean,
		MeanOver: []string{"seed"},
	}
}

// ablationVariants fixes the order and the overlays of the ablation's
// design-choice variants (see AblationStudy).
func ablationVariants(gv float64) []experiment.Case {
	wa := func(extra experiment.Settings) experiment.Settings {
		s := experiment.Settings{"policy": string(PolicyVMTWA), "gv": gv}
		for k, v := range extra {
			s[k] = v
		}
		return s
	}
	return []experiment.Case{
		{Name: "ta", Set: experiment.Settings{"policy": string(PolicyVMTTA), "gv": gv}},
		{Name: "wa", Set: wa(nil)},
		{Name: "wa-oracle", Set: wa(experiment.Settings{"oracle_wax_state": true})},
		{Name: "wa-budget-2%", Set: wa(experiment.Settings{"migration_budget_frac": 0.02})},
		{Name: "wa-budget-100%", Set: wa(experiment.Settings{"migration_budget_frac": 1.0})},
	}
}

// AblationSpec is the declarative form of AblationStudy: the
// design-choice variants as one case axis over a shared baseline.
func AblationSpec(servers int, gv float64) experiment.Spec {
	return experiment.Spec{
		Name:        "ablation",
		Description: "Design-choice ablation vs shared round-robin baseline",
		Base:        experiment.Settings{"servers": servers},
		Axes:        []experiment.Axis{{Name: "variant", Cases: ablationVariants(gv)}},
		Baseline:    &experiment.Baseline{Set: baselineRR()},
		Reducer:     experiment.ReducePeakReduction,
	}
}

// adaptabilityVariants builds the per-condition case axis of the
// adaptability sweeps: passive TTS (round robin with the real wax)
// plus VMT-TA at every grid GV. The baseline is the wax-free fleet.
func adaptabilityVariants(gvs []float64) []experiment.Case {
	cases := make([]experiment.Case, 0, len(gvs)+1)
	cases = append(cases, experiment.Case{
		Name: "tts",
		Set:  experiment.Settings{"policy": string(PolicyRoundRobin), "gv": 0.0},
	})
	for _, gv := range gvs {
		cases = append(cases, experiment.Case{
			Name: fmt.Sprintf("gv-%g", gv),
			Set:  experiment.Settings{"policy": string(PolicyVMTTA), "gv": gv},
		})
	}
	return cases
}

// adaptabilityBaseline is the wax-free round-robin reference fleet,
// re-run per condition value.
func adaptabilityBaseline(conditionAxis string) *experiment.Baseline {
	return &experiment.Baseline{
		Set: experiment.Settings{
			"policy": string(PolicyRoundRobin), "gv": 0.0, "material": "inert",
		},
		Vary: []string{conditionAxis},
	}
}

// AmbientSweepSpec is the declarative form of AmbientSweep: TTS vs
// retuned VMT across inlet temperatures, each measured against a
// wax-free fleet at the same inlet.
func AmbientSweepSpec(servers int, inletsC, gvs []float64) experiment.Spec {
	return experiment.Spec{
		Name:        "ambient-sweep",
		Description: "TTS vs retuned VMT across inlet temperatures (adaptability)",
		Base:        experiment.Settings{"servers": servers},
		Axes: []experiment.Axis{
			{Name: "inlet_c", Values: floatsToAny(inletsC)},
			{Name: "variant", Cases: adaptabilityVariants(gvs)},
		},
		Baseline: adaptabilityBaseline("inlet_c"),
		Reducer:  experiment.ReducePeakReductionBest,
		BestOver: "variant",
	}
}

// DriftSweepSpec is the declarative form of DriftSweep: TTS vs retuned
// VMT as workload power drifts.
func DriftSweepSpec(servers int, powerScales, gvs []float64) experiment.Spec {
	return experiment.Spec{
		Name:        "drift-sweep",
		Description: "TTS vs retuned VMT under workload power drift (adaptability)",
		Base:        experiment.Settings{"servers": servers},
		Axes: []experiment.Axis{
			{Name: "power_scale", Values: floatsToAny(powerScales)},
			{Name: "variant", Cases: adaptabilityVariants(gvs)},
		},
		Baseline: adaptabilityBaseline("power_scale"),
		Reducer:  experiment.ReducePeakReductionBest,
		BestOver: "variant",
	}
}

// PMTSweepSpec is the declarative form of PMTSweep: the wax purchasing
// decision, with the GV retuned per candidate melting temperature.
func PMTSweepSpec(servers int, meltTempsC, gvGrid []float64) experiment.Spec {
	return experiment.Spec{
		Name:        "pmt-sweep",
		Description: "Best retuned peak reduction vs wax melting temperature",
		Base:        experiment.Settings{"servers": servers, "policy": string(PolicyVMTTA)},
		Axes: []experiment.Axis{
			{Name: "pmt_c", Values: floatsToAny(meltTempsC)},
			{Name: "gv", Values: floatsToAny(gvGrid)},
		},
		Baseline: &experiment.Baseline{Set: baselineRR()},
		Reducer:  experiment.ReducePeakReductionBest,
		BestOver: "gv",
	}
}

// VolumeSweepSpec is the declarative form of VolumeSweep: the deployed
// wax volume, with the GV retuned per volume.
func VolumeSweepSpec(servers int, volumesL, gvGrid []float64) experiment.Spec {
	return experiment.Spec{
		Name:        "volume-sweep",
		Description: "Best retuned peak reduction vs wax volume per server",
		Base:        experiment.Settings{"servers": servers, "policy": string(PolicyVMTTA)},
		Axes: []experiment.Axis{
			{Name: "volume_l", Values: floatsToAny(volumesL)},
			{Name: "gv", Values: floatsToAny(gvGrid)},
		},
		Baseline: &experiment.Baseline{Set: baselineRR()},
		Reducer:  experiment.ReducePeakReductionBest,
		BestOver: "gv",
	}
}

// CoolingLoadSpec is the declarative form of RunCoolingLoadStudy
// (Figures 13/16): coolest-first plus the policy at each GV, all
// against the round-robin baseline.
func CoolingLoadSpec(servers int, policy Policy, gvs []float64) experiment.Spec {
	cases := make([]experiment.Case, 0, len(gvs)+1)
	cases = append(cases, experiment.Case{
		Name: "cf",
		Set:  experiment.Settings{"policy": string(PolicyCoolestFirst), "gv": 0.0},
	})
	for _, gv := range gvs {
		cases = append(cases, experiment.Case{
			Name: fmt.Sprintf("gv-%g", gv),
			Set:  experiment.Settings{"policy": string(policy), "gv": gv},
		})
	}
	return experiment.Spec{
		Name:        "cooling-load",
		Description: "Cooling-load series and peak reductions per policy (Figures 13/16)",
		Base:        experiment.Settings{"servers": servers},
		Axes:        []experiment.Axis{{Name: "variant", Cases: cases}},
		Baseline:    &experiment.Baseline{Set: baselineRR()},
		Reducer:     experiment.ReducePeakReduction,
	}
}

// faultRateCases builds the failure-rate case axis of the fault study:
// a clean 0/h case plus a stochastic crash plan per rate, all seeded
// identically so every policy at a given rate faces the same injected
// fault history.
func faultRateCases(rates []float64, repairAfterMin float64, seed uint64) []experiment.Case {
	cases := make([]experiment.Case, 0, len(rates))
	for _, rate := range rates {
		c := experiment.Case{Name: fmt.Sprintf("%g", rate)}
		if rate > 0 {
			c.Set = experiment.Settings{"faults": faultSetting(fault.Plan{
				Seed: seed,
				Stochastic: &fault.Stochastic{
					RatePerHour:    rate,
					RepairAfterMin: repairAfterMin,
				},
			})}
		}
		cases = append(cases, c)
	}
	return cases
}

// FaultStudySpec is the declarative form of RunFaultStudy: VMT-TA and
// VMT-WA under injected stochastic server crashes on the query-level
// load model, each measured against a round-robin baseline suffering
// the same fault plan at the same rate.
func FaultStudySpec(servers int, rates []float64, gv float64, seed uint64) experiment.Spec {
	return experiment.Spec{
		Name:        "fault-study",
		Description: "Cooling reduction and QoS degradation under injected server crashes",
		Base: experiment.Settings{
			"servers": servers, "gv": gv, "job_stream": true, "seed": float64(seed),
		},
		Axes: []experiment.Axis{
			{Name: "fault_rate", Cases: faultRateCases(rates, 120, seed)},
			{Name: "variant", Cases: []experiment.Case{
				{Name: "ta", Set: experiment.Settings{"policy": string(PolicyVMTTA)}},
				{Name: "wa", Set: experiment.Settings{"policy": string(PolicyVMTWA)}},
			}},
		},
		Baseline: &experiment.Baseline{
			Set:  baselineRR(),
			Vary: []string{"fault_rate"},
		},
		Reducer: experiment.ReducePeakReduction,
	}
}

// correlatedTopology returns the topology every correlated-fault case
// shares: racks of six servers, five racks per row, one row per
// cooling zone — so a 60-server cluster has 10 racks, 2 rows, and 2
// zones, and a rack trip takes out 10% of the fleet at once.
func correlatedTopology() *topology.Spec {
	return &topology.Spec{ServersPerRack: 6, RacksPerRow: 5, RowsPerZone: 1}
}

// correlationCases builds the correlation-degree axis of the
// correlated fault study. Every faulty case is seeded identically, so
// each policy (and the round-robin baseline) faces the same injected
// history; the degrees step from independent crashes (the PR 5 model)
// through rack-atomic crashes and zone-wide cooling derates to
// Byzantine reports and the combined worst case.
func correlationCases(seed uint64) []experiment.Case {
	topo := correlatedTopology()
	// Two rack trips of 6 servers × 180 min ≈ the expected downtime of
	// independent crashes at 0.01 / server-hour over the 24 h trace, so
	// "independent" and "rack" differ in correlation, not in total
	// injected downtime.
	rackTrips := []fault.DomainFault{
		{Kind: topology.DomainRack, Index: 1, AtMin: 360, RepairAfterMin: 180},
		{Kind: topology.DomainRack, Index: 4, AtMin: 780, RepairAfterMin: 180},
	}
	byz := []fault.ByzantineFault{
		// Hot-group servers overstating melt progress (VMT-WA resizes
		// on these) and understating load.
		{Server: 0, Kind: fault.ByzMelt, StartMin: 120, Bias: 0.6, Jitter: 0.05},
		{Server: 1, Kind: fault.ByzMelt, StartMin: 120, Bias: 0.6, Jitter: 0.05},
		{Server: 2, Kind: fault.ByzMelt, StartMin: 180, Bias: -0.5, Jitter: 0.05},
		{Server: 0, Kind: fault.ByzUtil, StartMin: 120, Bias: -0.4, Jitter: 0.02},
		{Server: 3, Kind: fault.ByzUtil, StartMin: 240, Bias: 0.4, Jitter: 0.02},
	}
	return []experiment.Case{
		{Name: "none"},
		{Name: "independent", Set: experiment.Settings{"faults": faultSetting(fault.Plan{
			Seed:       seed,
			Stochastic: &fault.Stochastic{RatePerHour: 0.01, RepairAfterMin: 120},
		})}},
		{Name: "rack", Set: experiment.Settings{"faults": faultSetting(fault.Plan{
			Seed:     seed,
			Topology: topo,
			Domains:  rackTrips,
		})}},
		{Name: "zone-derate", Set: experiment.Settings{"faults": faultSetting(fault.Plan{
			Seed:     seed,
			Topology: topo,
			Domains: []fault.DomainFault{{
				Kind: topology.DomainZone, Index: 0, Mode: fault.ModeDerate,
				AtMin: 360, RepairAfterMin: 240, DerateInletDeltaC: 6,
			}},
		})}},
		{Name: "stochastic-rack", Set: experiment.Settings{"faults": faultSetting(fault.Plan{
			Seed:     seed,
			Topology: topo,
			StochasticDomains: &fault.StochasticDomains{
				Kind: topology.DomainRack, RatePerHour: 0.005, RepairAfterMin: 180,
			},
		})}},
		{Name: "byzantine", Set: experiment.Settings{"faults": faultSetting(fault.Plan{
			Seed:      seed,
			Byzantine: byz,
		})}},
		{Name: "rack-byzantine", Set: experiment.Settings{"faults": faultSetting(fault.Plan{
			Seed:      seed,
			Topology:  topo,
			Domains:   rackTrips,
			Byzantine: byz,
		})}},
	}
}

// CorrelatedFaultStudySpec is the declarative form of
// RunCorrelatedFaultStudy: VMT-TA and VMT-WA under correlated failure
// domains (rack/PDU trips, cooling-zone derates, their stochastic
// variants) and Byzantine report faults, each measured against a
// round-robin baseline suffering the identical plan. The independent
// crash case carries comparable total downtime, so the axis isolates
// the *correlation degree* rather than the fault volume.
func CorrelatedFaultStudySpec(servers int, gv float64, seed uint64) experiment.Spec {
	return experiment.Spec{
		Name:        "correlated-fault-study",
		Description: "Cooling reduction under correlated domain failures and Byzantine reports",
		Base: experiment.Settings{
			"servers": servers, "gv": gv, "job_stream": true, "seed": float64(seed),
		},
		Axes: []experiment.Axis{
			{Name: "correlation", Cases: correlationCases(seed)},
			{Name: "variant", Cases: []experiment.Case{
				{Name: "ta", Set: experiment.Settings{"policy": string(PolicyVMTTA)}},
				{Name: "wa", Set: experiment.Settings{"policy": string(PolicyVMTWA)}},
			}},
		},
		Baseline: &experiment.Baseline{
			Set:  baselineRR(),
			Vary: []string{"correlation"},
		},
		Reducer: experiment.ReducePeakReduction,
	}
}

// tuneGVSpec is the declarative form of the adaptive study's inner
// tuning loop: the VMT-WA grid on one forecast day, on the smaller
// tuning cluster.
func tuneGVSpec(servers int, dayUtil, gvGrid []float64) experiment.Spec {
	return experiment.Spec{
		Name:        "tune-gv",
		Description: "Day-ahead GV tuning on a forecast trace",
		Base: experiment.Settings{
			"servers":      servers,
			"policy":       string(PolicyVMTWA),
			"custom_trace": customTraceSetting(dayUtil, time.Minute),
		},
		Axes:     []experiment.Axis{{Name: "gv", Values: floatsToAny(gvGrid)}},
		Baseline: &experiment.Baseline{Set: baselineRR()},
		Reducer:  experiment.ReducePeakReductionBest,
		BestOver: "gv",
	}
}

// staticGVSpec is the declarative form of the adaptive study's static
// reference: the VMT-WA grid over the full multi-day trace.
func staticGVSpec(servers int, tr trace.Spec, gvGrid []float64) experiment.Spec {
	return experiment.Spec{
		Name:        "static-gv",
		Description: "Best single static GV over a multi-day trace",
		Base: experiment.Settings{
			"servers": servers,
			"policy":  string(PolicyVMTWA),
			"trace":   traceSetting(tr),
		},
		Axes:     []experiment.Axis{{Name: "gv", Values: floatsToAny(gvGrid)}},
		Baseline: &experiment.Baseline{Set: baselineRR()},
		Reducer:  experiment.ReducePeakReductionBest,
		BestOver: "gv",
	}
}
