package vmt

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// -update rewrites the golden fixtures under results/golden from the
// current simulator output. Run it deliberately, after verifying a
// behaviour change is intended, and review the fixture diff like code:
//
//	go test -run TestGolden -update .
var updateGolden = flag.Bool("update", false, "rewrite golden fixtures under results/golden")

const goldenDir = "results/golden"

// goldenCompare checks got against the named fixture (or rewrites it
// under -update). Fixtures are JSON; floats survive encoding/json
// round trips bit-exactly (shortest-representation encoding), so the
// comparison below can demand exact equality.
func goldenCompare[T any](t *testing.T, name string, got T, equal func(a, b T) string) {
	t.Helper()
	path := filepath.Join(goldenDir, name)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s (run `go test -run TestGolden -update .` to create it): %v", path, err)
	}
	var want T
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden fixture %s: %v", path, err)
	}
	if diff := equal(got, want); diff != "" {
		t.Errorf("%s drifted from golden fixture:\n%s\n"+
			"If this change is intended, regenerate with `go test -run TestGolden -update .` and commit the diff.", name, diff)
	}
}

// exactFloats reports the first bit-level float mismatch, tolerating
// nothing: the simulator is deterministic and the perf work in this
// tree is required to be result-preserving, so any drift is a bug (or
// a deliberate, fixture-updating behaviour change).
func exactFloats(label string, got, want []float64) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return fmt.Sprintf("%s[%d]: got %v (%#x), want %v (%#x)",
				label, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
	return ""
}

// goldenGVPoint mirrors GVSweepPoint with explicit JSON tags so the
// fixture format is stable even if the public struct grows fields.
type goldenGVPoint struct {
	GV           float64 `json:"gv"`
	ReductionPct float64 `json:"reduction_pct"`
}

// TestGoldenGVSweep pins the cooling-overhead-reduction-vs-GV curve
// (the shape behind Figure 18) for a small cluster on the paper trace.
// The fixture captures both the physics (peak cooling loads of
// baseline and VMT runs) and the scheduler (placement decisions at
// every GV), so virtually any unintended behaviour change in the hot
// path shows up here as a bit-level diff.
func TestGoldenGVSweep(t *testing.T) {
	gvs := []float64{16, 20, 22, 24, 28}
	pts, err := GVSweep(8, PolicyVMTTA, gvs)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]goldenGVPoint, len(pts))
	for i, p := range pts {
		got[i] = goldenGVPoint{GV: p.GV, ReductionPct: p.ReductionPct}
	}
	goldenCompare(t, "gv_sweep.json", got, func(a, b []goldenGVPoint) string {
		if len(a) != len(b) {
			return fmt.Sprintf("points: %d, want %d", len(a), len(b))
		}
		for i := range b {
			if math.Float64bits(a[i].GV) != math.Float64bits(b[i].GV) ||
				math.Float64bits(a[i].ReductionPct) != math.Float64bits(b[i].ReductionPct) {
				return fmt.Sprintf("point %d: got %+v, want %+v", i, a[i], b[i])
			}
		}
		return ""
	})
}

// goldenMeltTrajectories is the fixture for the VMT-TA vs VMT-WA
// melt-fraction comparison (the dynamic behind Figures 15–17): hourly
// fleet-mean melt fraction over the two-day trace for both policies.
type goldenMeltTrajectories struct {
	Servers int       `json:"servers"`
	GV      float64   `json:"gv"`
	StepS   float64   `json:"step_s"`
	VMTTA   []float64 `json:"vmt_ta"`
	VMTWA   []float64 `json:"vmt_wa"`
}

// TestGoldenMeltTrajectories pins the hourly melt-fraction trajectory
// of VMT-TA against VMT-WA at the same GV. VMT-WA's wax-aware checks
// change when servers rotate out of the hot group, so these two curves
// diverging or converging differently is the signature of scheduler or
// wax-model drift.
func TestGoldenMeltTrajectories(t *testing.T) {
	const servers, gv = 8, 22
	got := goldenMeltTrajectories{Servers: servers, GV: gv}
	for _, c := range []struct {
		policy Policy
		dst    *[]float64
	}{
		{PolicyVMTTA, &got.VMTTA},
		{PolicyVMTWA, &got.VMTWA},
	} {
		res, err := Run(Scenario(servers, c.policy, gv))
		if err != nil {
			t.Fatalf("%s: %v", c.policy, err)
		}
		hourly := res.MeanMeltFrac.Downsample(60)
		got.StepS = hourly.Step.Seconds()
		*c.dst = hourly.Values
	}
	goldenCompare(t, "melt_trajectories.json", got, func(a, b goldenMeltTrajectories) string {
		if a.Servers != b.Servers || a.GV != b.GV || a.StepS != b.StepS {
			return fmt.Sprintf("header: got %d/%g/%g, want %d/%g/%g",
				a.Servers, a.GV, a.StepS, b.Servers, b.GV, b.StepS)
		}
		if d := exactFloats("vmt_ta", a.VMTTA, b.VMTTA); d != "" {
			return d
		}
		return exactFloats("vmt_wa", a.VMTWA, b.VMTWA)
	})
}
