package vmt

import (
	"testing"
	"time"

	"vmt/internal/energy"
)

func TestAblationStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-day cluster runs")
	}
	pts, err := AblationStudy(100, 20)
	if err != nil {
		t.Fatal(err)
	}
	red := map[string]float64{}
	for _, p := range pts {
		red[p.Name] = p.ReductionPct
	}
	for _, name := range []string{"ta", "wa", "wa-oracle", "wa-budget-2%", "wa-budget-100%"} {
		if _, ok := red[name]; !ok {
			t.Fatalf("missing variant %s", name)
		}
	}
	// The wax feedback is what GV=20 needs: WA must beat TA.
	if red["wa"] <= red["ta"] {
		t.Fatalf("wa (%.2f) should beat ta (%.2f) at GV=20", red["wa"], red["ta"])
	}
	// Perfect wax-state knowledge buys little: the estimator is good.
	if diff := red["wa-oracle"] - red["wa"]; diff < -0.5 || diff > 1.5 {
		t.Fatalf("oracle delta %.2f outside the small band", diff)
	}
	// Starving the migration budget costs some benefit; an unbounded
	// budget is no better than the default.
	if red["wa-budget-2%"] > red["wa"]+0.1 {
		t.Fatalf("tiny budget (%.2f) should not beat the default (%.2f)",
			red["wa-budget-2%"], red["wa"])
	}
	if red["wa-budget-100%"] < red["wa"]-0.5 {
		t.Fatalf("unbounded budget (%.2f) should not lose to the default (%.2f)",
			red["wa-budget-100%"], red["wa"])
	}
}

func TestAsymmetricTraceSpec(t *testing.T) {
	s := AsymmetricTwoDay(0.7)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.PeakUtil[0] != 0.7 || s.PeakUtil[1] != 0.95 {
		t.Fatalf("peaks = %v", s.PeakUtil)
	}
}

// The preserving extension's reason to exist: on a warm night where
// overnight refreeze is incomplete, standard VMT-WA arrives at the
// second (hotter) peak with exhausted wax, while preservation arrives
// with capacity left.
func TestPreserveStudyWarmNight(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-day cluster runs")
	}
	tr := AsymmetricTwoDay(0.90)
	tr.TroughUtil = 0.62 // warm night: refreeze stalls
	run := func(p Policy) *Result {
		cfg := Scenario(100, p, 22)
		cfg.Trace = tr
		if p == PolicyVMTPreserve {
			cfg.PreserveUntil = 38 * time.Hour
		}
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run(PolicyRoundRobin)
	wa := run(PolicyVMTWA)
	pres := run(PolicyVMTPreserve)
	waD1, waD2 := dayPeakReductions(base, wa)
	presD1, presD2 := dayPeakReductions(base, pres)
	if presD2 <= waD2 {
		t.Fatalf("preserving should improve day 2: %.2f vs %.2f", presD2, waD2)
	}
	// The price: preservation gives up day-one shaving.
	if presD1 >= waD1 {
		t.Fatalf("preservation should cost day-1 benefit: %.2f vs %.2f", presD1, waD1)
	}
}

// On the standard trace (cold nights, full refreeze), preservation is
// pointless: day two matches standard VMT-WA.
func TestPreserveStudyNeutralOnStandardTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-day cluster runs")
	}
	st, err := RunPreserveStudy(100, 22, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if diff := st.Preserve - st.WA; diff < -1 || diff > 1 {
		t.Fatalf("day-2 reductions should match when nights refreeze: %.2f vs %.2f",
			st.Preserve, st.WA)
	}
}

func TestDayPeakReductionsSplit(t *testing.T) {
	cfg := BaselineScenario(4)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := dayPeakReductions(base, base)
	if d1 != 0 || d2 != 0 {
		t.Fatalf("self-comparison should be zero: %v, %v", d1, d2)
	}
}

// VMT shifts cooling energy out of the expensive tariff window: the
// stored peak heat is released overnight at off-peak rates, so the
// time-of-use bill falls even though total heat is unchanged.
func TestEnergyCostStudyShiftsOffPeak(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-day cluster runs")
	}
	st, err := RunEnergyCostStudy(100, 22, energy.TypicalTOU())
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakShareVMT >= st.PeakShareRR {
		t.Fatalf("VMT peak-window share %.3f should fall below RR's %.3f",
			st.PeakShareVMT, st.PeakShareRR)
	}
	if st.SavingsPct <= 0 {
		t.Fatalf("TOU savings should be positive, got %.2f%%", st.SavingsPct)
	}
	if st.SavingsPct > 15 {
		t.Fatalf("TOU savings %.2f%% implausibly large for this tariff", st.SavingsPct)
	}
	if st.BillRR <= 0 || st.BillVMT <= 0 {
		t.Fatalf("bills must be positive: %v / %v", st.BillRR, st.BillVMT)
	}
}

func TestEnergyCostStudyValidation(t *testing.T) {
	if _, err := RunEnergyCostStudy(0, 22, energy.TypicalTOU()); err == nil {
		t.Fatal("zero servers should fail")
	}
	bad := energy.Tariff{OffPeakUSDPerKWh: -1}
	if _, err := RunEnergyCostStudy(4, 22, bad); err == nil {
		t.Fatal("bad tariff should fail")
	}
}

// The spatial parenthetical: physically clustering the hot group
// overloads its zone's CRAC; striping the group across zones keeps
// every CRAC near the balanced load.
func TestZonePlacementStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-day cluster run")
	}
	st, err := RunZonePlacementStudy(100, 5, 22)
	if err != nil {
		t.Fatal(err)
	}
	if st.StripedPeakToMean > 1.08 {
		t.Fatalf("striped layout imbalance %.3f should be near 1", st.StripedPeakToMean)
	}
	if st.ClusteredPeakToMean < st.StripedPeakToMean+0.1 {
		t.Fatalf("clustered layout (%.3f) should be clearly worse than striped (%.3f)",
			st.ClusteredPeakToMean, st.StripedPeakToMean)
	}
	if st.CRACOversizePct < 10 {
		t.Fatalf("CRAC oversize %.1f%% implausibly small", st.CRACOversizePct)
	}
}

func TestZonePlacementValidation(t *testing.T) {
	if _, err := RunZonePlacementStudy(10, 0, 22); err == nil {
		t.Fatal("zero zones should fail")
	}
	if _, err := RunZonePlacementStudy(0, 2, 22); err == nil {
		t.Fatal("zero servers should fail")
	}
}
