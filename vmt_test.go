package vmt

import (
	"math"
	"testing"
	"time"

	"vmt/internal/trace"
)

// smallTrace returns a shortened single-day trace so unit tests of the
// harness stay fast; shape experiments use the full two-day trace.
func smallTrace() trace.Spec {
	s := trace.PaperTwoDay()
	s.Days = 1
	s.PeakUtil = []float64{0.95}
	s.PeakHours = []float64{20}
	return s
}

func TestConfigValidate(t *testing.T) {
	good := Scenario(10, PolicyVMTTA, 22)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"unknown policy", func(c *Config) { c.Policy = "nope" }},
		{"vmt without gv", func(c *Config) { c.GV = 0 }},
		{"zero servers", func(c *Config) { c.Servers = 0 }},
		{"negative step", func(c *Config) { c.Step = -time.Second }},
		{"bad trace", func(c *Config) { c.Trace = trace.Spec{Days: 1} }},
	}
	for _, tc := range cases {
		cfg := Scenario(10, PolicyVMTTA, 22)
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
	// Baselines do not need a GV.
	if err := BaselineScenario(10).Validate(); err != nil {
		t.Errorf("round robin without GV should be valid: %v", err)
	}
}

func TestRunProducesAlignedSeries(t *testing.T) {
	cfg := BaselineScenario(5)
	cfg.Trace = smallTrace()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := res.CoolingLoadW.Len()
	if n != 24*60 {
		t.Fatalf("samples = %d, want %d", n, 24*60)
	}
	for _, s := range []int{res.TotalPowerW.Len(), res.MeanAirTempC.Len(), res.MeanMeltFrac.Len(), res.WaxEnergyJ.Len()} {
		if s != n {
			t.Fatalf("series misaligned: %d vs %d", s, n)
		}
	}
	if res.HotGroupTempC != nil {
		t.Fatal("baseline run should not report hot-group series")
	}
	if res.AirTempGrid != nil {
		t.Fatal("grids should be off by default")
	}
	if res.PeakCoolingW() <= 0 {
		t.Fatal("peak cooling should be positive")
	}
	if _, err := res.CoolingSummary(); err != nil {
		t.Fatal(err)
	}
}

func TestRunVMTReportsGroups(t *testing.T) {
	cfg := Scenario(10, PolicyVMTWA, 22)
	cfg.Trace = smallTrace()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HotGroupTempC == nil || res.HotGroupSize == nil {
		t.Fatal("VMT run should report hot-group series")
	}
	if res.HotGroupSize.Values[0] != 6 { // 22/35.7×10 ≈ 6.2 → 6
		t.Fatalf("initial hot group = %v, want 6", res.HotGroupSize.Values[0])
	}
}

func TestRunRecordsGrids(t *testing.T) {
	cfg := BaselineScenario(4)
	cfg.Trace = smallTrace()
	cfg.RecordGrids = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AirTempGrid) != res.CoolingLoadW.Len() {
		t.Fatalf("grid rows = %d, want %d", len(res.AirTempGrid), res.CoolingLoadW.Len())
	}
	if len(res.AirTempGrid[0]) != 4 || len(res.MeltFracGrid[0]) != 4 {
		t.Fatal("grid columns should match server count")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Scenario(8, PolicyVMTTA, 22)
	cfg.Trace = smallTrace()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.CoolingLoadW.Values {
		if a.CoolingLoadW.Values[i] != b.CoolingLoadW.Values[i] {
			t.Fatalf("runs diverged at sample %d", i)
		}
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero config should fail")
	}
	if _, err := Run(Scenario(10, PolicyVMTTA, 0)); err == nil {
		t.Fatal("VMT without GV should fail")
	}
}

// Energy sanity across the harness: total electrical input over the
// run must equal the ejected heat plus the (small) energy still parked
// in wax and server air at the end.
func TestRunEnergyAccounting(t *testing.T) {
	cfg := Scenario(6, PolicyVMTTA, 22)
	cfg.Trace = smallTrace()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepS := res.Config.Step.Seconds()
	var inJ, outJ float64
	for i := range res.TotalPowerW.Values {
		inJ += res.TotalPowerW.Values[i] * stepS
		outJ += res.CoolingLoadW.Values[i] * stepS
	}
	residual := inJ - outJ
	// Residual = wax + air energy; bounded by a generous envelope
	// (wax capacity + air heating for the whole cluster).
	bound := 6 * (1.2e6 + 1e6)
	if residual < 0 || residual > bound {
		t.Fatalf("energy residual %v J outside [0, %v]", residual, bound)
	}
}

// ===== Shape anchors from the paper, on the 100-server sweeps =====

func TestShapeBaselinesMeltNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-day cluster run")
	}
	for _, policy := range []Policy{PolicyRoundRobin, PolicyCoolestFirst} {
		res, err := Run(Scenario(100, policy, 0))
		if err != nil {
			t.Fatal(err)
		}
		peakMelt, _, _ := res.MeanMeltFrac.Peak()
		if peakMelt > 0.01 {
			t.Errorf("%s melted %.3f of the wax; the paper's baselines melt none", policy, peakMelt)
		}
		peakTemp, _, _ := res.MeanAirTempC.Peak()
		if peakTemp >= 35.7 {
			t.Errorf("%s mean air peak %.2f should stay below the melting point", policy, peakTemp)
		}
		if peakTemp < 34 {
			t.Errorf("%s mean air peak %.2f should approach the melting point", policy, peakTemp)
		}
	}
}

func TestShapeGV22IsBest(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-day cluster runs")
	}
	pts, err := GVSweep(100, PolicyVMTTA, []float64{20, 22, 24})
	if err != nil {
		t.Fatal(err)
	}
	red := map[float64]float64{}
	for _, p := range pts {
		red[p.GV] = p.ReductionPct
	}
	// Figure 13: GV=22 best (≈12.8%), GV=24 about two thirds (≈8.8%),
	// GV=20 melts out early (≈0).
	if !(red[22] > red[24] && red[24] > red[20]) {
		t.Fatalf("ordering wrong: %v", red)
	}
	if red[22] < 10 || red[22] > 15 {
		t.Fatalf("GV=22 reduction %.2f%% outside the paper's ballpark (12.8%%)", red[22])
	}
	if red[20] > 4 {
		t.Fatalf("GV=20 reduction %.2f%% should be near zero under VMT-TA", red[20])
	}
	ratio := red[24] / red[22]
	if ratio < 0.5 || ratio > 0.95 {
		t.Fatalf("GV=24/GV=22 ratio %.2f outside the paper's ≈0.69 ballpark", ratio)
	}
}

func TestShapeWARecoversLowGV(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-day cluster runs")
	}
	ta, err := PeakReductionPct(Scenario(100, PolicyVMTTA, 20))
	if err != nil {
		t.Fatal(err)
	}
	wa, err := PeakReductionPct(Scenario(100, PolicyVMTWA, 20))
	if err != nil {
		t.Fatal(err)
	}
	// Figure 16: at GV=20 the wax-aware policy retains meaningful
	// benefit where thermal-aware loses it.
	if wa <= ta {
		t.Fatalf("VMT-WA (%.2f%%) should beat VMT-TA (%.2f%%) at GV=20", wa, ta)
	}
	if wa < 2 {
		t.Fatalf("VMT-WA at GV=20 should retain real benefit, got %.2f%%", wa)
	}
}

func TestShapeWaxThresholdPlateau(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-day cluster runs")
	}
	pts, err := WaxThresholdSweep(100, 22, []float64{0.85, 0.95, 0.98})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 17: thresholds ≥0.95 reach the plateau.
	at := func(th float64) float64 {
		for _, p := range pts {
			if p.WaxThreshold == th {
				return p.ReductionPct
			}
		}
		t.Fatalf("missing threshold %v", th)
		return 0
	}
	if math.Abs(at(0.95)-at(0.98)) > 1.5 {
		t.Fatalf("0.95 (%.2f%%) and 0.98 (%.2f%%) should sit on the same plateau",
			at(0.95), at(0.98))
	}
	if at(0.85) > at(0.98)+0.5 {
		t.Fatalf("a low threshold (%.2f%%) should not beat the plateau (%.2f%%)",
			at(0.85), at(0.98))
	}
}

func TestGVMappingMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-day cluster runs")
	}
	rows, err := GVMapping(100, []float64{20, 22, 24, 26})
	if err != nil {
		t.Fatal(err)
	}
	prev := -math.MaxFloat64
	for _, r := range rows {
		if !r.Melts {
			continue
		}
		if r.VMTTempC < prev {
			t.Fatalf("mapping not monotone at GV=%v: %v < %v", r.GV, r.VMTTempC, prev)
		}
		prev = r.VMTTempC
		if r.VMTTempC > 35.7 || r.VMTTempC < 25 {
			t.Fatalf("VMT %v out of the physically sensible band", r.VMTTempC)
		}
	}
}

func TestFeasibilityMapPanels(t *testing.T) {
	panels, err := FeasibilityMap(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 6 {
		t.Fatalf("panels = %d, want 6", len(panels))
	}
	for _, p := range panels {
		if len(p.Points) != 11 {
			t.Fatalf("%s: points = %d, want 11", p.Name, len(p.Points))
		}
	}
}

func TestColocationStudyRuns(t *testing.T) {
	caching, search, err := ColocationStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(caching) == 0 || len(search) == 0 {
		t.Fatal("empty colocation curves")
	}
}

func TestReliabilityStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-day cluster run")
	}
	six, three, err := ReliabilityStudy(100, 22)
	if err != nil {
		t.Fatal(err)
	}
	if six.Months != 6 || three.Months != 36 {
		t.Fatalf("horizons wrong: %d, %d", six.Months, three.Months)
	}
	// Figure 7: the delta is small positive.
	if three.DeltaPct <= 0 || three.DeltaPct > 3 {
		t.Fatalf("3-year delta %.2f%% outside the paper's small-positive band", three.DeltaPct)
	}
}

func TestTCOStudyPaperNumbers(t *testing.T) {
	study, err := RunTCOStudy(12.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(study.Best.GrossCoolingSavingsUSD-2_688_000) > 1 {
		t.Fatalf("gross savings %v, want $2.688M", study.Best.GrossCoolingSavingsUSD)
	}
	if study.Best.ExtraServers != 7339 {
		t.Fatalf("extra servers %d, want 7339", study.Best.ExtraServers)
	}
	if math.Abs(study.Conservative.GrossCoolingSavingsUSD-1_260_000) > 1 {
		t.Fatalf("conservative savings %v, want $1.26M", study.Conservative.GrossCoolingSavingsUSD)
	}
	if study.NParaffinUSD < 4*study.Best.GrossCoolingSavingsUSD {
		t.Fatalf("n-paraffin (%v) should cost several times the VMT savings", study.NParaffinUSD)
	}
}

func TestCoolingLoadStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-day cluster runs")
	}
	study, err := RunCoolingLoadStudy(100, PolicyVMTTA, []float64{22})
	if err != nil {
		t.Fatal(err)
	}
	if study.Baseline.Len() == 0 || study.Coolest.Len() == 0 {
		t.Fatal("missing baseline series")
	}
	if _, ok := study.ByGV[22]; !ok {
		t.Fatal("missing GV=22 series")
	}
	if study.Reductions["Round Robin"] != 0 {
		t.Fatal("round robin reduction must be zero by definition")
	}
	if math.Abs(study.Reductions["Coolest First"]) > 2 {
		t.Fatalf("coolest first should be ≈0, got %v", study.Reductions["Coolest First"])
	}
	if study.Reductions["GV=22"] < 8 {
		t.Fatalf("GV=22 reduction too small: %v", study.Reductions["GV=22"])
	}
}

func TestHeatmapStudy(t *testing.T) {
	cfg := smallTrace()
	_ = cfg
	study, err := RunHeatmapStudy(10, PolicyVMTTA, 22)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.AirTempGrid) == 0 || len(study.AirTempGrid[0]) != 10 {
		t.Fatal("grid shape wrong")
	}
}

func TestInletVariationStudyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("many full cluster runs")
	}
	pts, err := InletVariationStudy(50, PolicyVMTTA, []float64{22}, []float64{0, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	if _, err := InletVariationStudy(10, PolicyVMTTA, nil, nil, 0); err == nil {
		t.Fatal("zero runs should fail")
	}
}

// The CFD constraint behind the 4.0 L wax figure: no server throttles,
// even under VMT's concentrated hot-group placement.
func TestShapeVMTNeverThrottles(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-day cluster runs")
	}
	for _, policy := range []Policy{PolicyVMTTA, PolicyVMTWA} {
		res, err := Run(Scenario(100, policy, 20)) // hottest realistic grouping
		if err != nil {
			t.Fatal(err)
		}
		if res.ThrottleMinutes != 0 {
			t.Errorf("%s: %d throttling minutes", policy, res.ThrottleMinutes)
		}
		peak, _, _ := res.MaxCPUTempC.Peak()
		if peak >= 85 {
			t.Errorf("%s: peak die temp %.1f °C at the limit", policy, peak)
		}
		if peak < 40 {
			t.Errorf("%s: peak die temp %.1f °C implausibly low", policy, peak)
		}
	}
}

// Query-level robustness: under discrete Poisson arrivals with task
// durations (instead of fluid load), VMT still delivers a substantial
// peak reduction, and drops stay negligible and placement-independent.
func TestShapeJobStreamRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-day cluster runs")
	}
	rr := BaselineScenario(100)
	rr.JobStream = true
	base, err := Run(rr)
	if err != nil {
		t.Fatal(err)
	}
	if base.TaskArrivals == 0 {
		t.Fatal("no task arrivals recorded")
	}
	dropRate := float64(base.TaskDrops) / float64(base.TaskArrivals)
	if dropRate > 0.005 {
		t.Fatalf("drop rate %.4f implausibly high for a provisioned cluster", dropRate)
	}
	cfg := Scenario(100, PolicyVMTTA, 22)
	cfg.JobStream = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	red := (base.PeakCoolingW() - res.PeakCoolingW()) / base.PeakCoolingW() * 100
	if red < 5 {
		t.Fatalf("job-stream reduction %.2f%% too small; burstiness should not erase VMT", red)
	}
	// Same seed, same arrival stream: drops are placement-independent
	// (the cluster-wide occupancy is what fills up).
	if res.TaskDrops != base.TaskDrops {
		t.Fatalf("drops changed with placement: %d vs %d", res.TaskDrops, base.TaskDrops)
	}
}

func TestJobStreamDeterministic(t *testing.T) {
	cfg := Scenario(8, PolicyVMTTA, 22)
	cfg.Trace = smallTrace()
	cfg.JobStream = true
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TaskArrivals != b.TaskArrivals || a.TaskDrops != b.TaskDrops {
		t.Fatalf("arrival stream diverged: (%d,%d) vs (%d,%d)",
			a.TaskArrivals, a.TaskDrops, b.TaskArrivals, b.TaskDrops)
	}
	for i := range a.CoolingLoadW.Values {
		if a.CoolingLoadW.Values[i] != b.CoolingLoadW.Values[i] {
			t.Fatalf("series diverged at %d", i)
		}
	}
}

func TestJobStreamCustomDurations(t *testing.T) {
	cfg := BaselineScenario(5)
	cfg.Trace = smallTrace()
	cfg.JobStream = true
	cfg.TaskDurations = map[string]time.Duration{"VideoEncoding": 3 * time.Minute}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TaskArrivals == 0 {
		t.Fatal("custom-duration stream produced no arrivals")
	}
}

// The fusion-scaled Table II derivation (the paper's literal
// procedure) corroborates the onset-equivalence mapping: a monotone
// GV ↔ virtual-melting-temperature relationship that saturates once
// TTS either cannot melt (ΔPMT ≥ 0) or melts out far before the peak
// (ΔPMT ≤ −4).
func TestGVMappingFusionMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("many full cluster runs")
	}
	rows, err := GVMappingFusion(100, []float64{0, -2, -3, -4},
		[]float64{16, 18, 20, 22, 24, 26, 28, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Deltas are descending, so matched GVs must be non-increasing
	// (lower virtual melting temperature ↔ smaller, hotter hot group).
	for i := 1; i < len(rows); i++ {
		if rows[i].GV > rows[i-1].GV {
			t.Fatalf("mapping not monotone: ΔPMT %v → GV %v after ΔPMT %v → GV %v",
				rows[i].DeltaPMTC, rows[i].GV, rows[i-1].DeltaPMTC, rows[i-1].GV)
		}
	}
	// The interior rows must actually match energies (within 20%).
	mid := rows[1] // ΔPMT −2
	if mid.TTSEnergyMJ <= 0 || mid.VMTEnergyMJ <= 0 {
		t.Fatalf("interior row has no stored energy: %+v", mid)
	}
	gap := mid.TTSEnergyMJ / mid.VMTEnergyMJ
	if gap < 0.7 || gap > 1.4 {
		t.Fatalf("interior energies poorly matched: %+v", mid)
	}
}

func TestGVMappingFusionValidation(t *testing.T) {
	if _, err := GVMappingFusion(10, nil, []float64{20}); err == nil {
		t.Fatal("empty deltas should fail")
	}
	if _, err := GVMappingFusion(10, []float64{0}, nil); err == nil {
		t.Fatal("empty grid should fail")
	}
}

// The headline at the paper's scale: 1,000 servers, two-day trace,
// GV=22, both policies within a point of the published 12.8%.
func TestHeadline1000Servers(t *testing.T) {
	if testing.Short() {
		t.Skip("three 1,000-server two-day runs")
	}
	baseline, err := Run(BaselineScenario(1000))
	if err != nil {
		t.Fatal(err)
	}
	budget := baseline.PeakCoolingW()
	peakMelt, _, _ := baseline.MeanMeltFrac.Peak()
	if peakMelt > 0.01 {
		t.Fatalf("TTS baseline melted %.3f of the wax at scale", peakMelt)
	}
	for _, policy := range []Policy{PolicyVMTTA, PolicyVMTWA} {
		res, err := Run(Scenario(1000, policy, 22))
		if err != nil {
			t.Fatal(err)
		}
		red := (budget - res.PeakCoolingW()) / budget * 100
		if red < 11 || red > 14 {
			t.Errorf("%s at 1,000 servers: %.2f%% outside the 12.8%% ballpark", policy, red)
		}
		if res.ThrottleMinutes != 0 {
			t.Errorf("%s throttled for %d minutes at scale", policy, res.ThrottleMinutes)
		}
	}
}

// The purchasing decision: reduction collapses as the wax melting
// point rises away from the achievable hot-group temperatures —
// why the paper buys the lowest commercial melting point.
func TestPMTSweepCliff(t *testing.T) {
	if testing.Short() {
		t.Skip("many full cluster runs")
	}
	pts, err := PMTSweep(60, []float64{35.7, 38.5, 41}, []float64{18, 20, 22, 24})
	if err != nil {
		t.Fatal(err)
	}
	if !(pts[0].ReductionPct > pts[1].ReductionPct && pts[1].ReductionPct > pts[2].ReductionPct) {
		t.Fatalf("reduction should fall with melting point: %+v", pts)
	}
	if pts[0].ReductionPct < 9 {
		t.Fatalf("paper wax should be strong, got %.1f%%", pts[0].ReductionPct)
	}
	if pts[2].ReductionPct > 2 {
		t.Fatalf("41 °C wax should be stranded, got %.1f%%", pts[2].ReductionPct)
	}
}

// The capacity decision: reduction grows with wax volume while the
// peak window outlasts storage, then saturates — the CFD-limited 4 L
// already captures most of the benefit.
func TestVolumeSweepSaturates(t *testing.T) {
	if testing.Short() {
		t.Skip("many full cluster runs")
	}
	pts, err := VolumeSweep(60, []float64{1, 4, 8}, []float64{18, 20, 22, 24})
	if err != nil {
		t.Fatal(err)
	}
	if !(pts[0].ReductionPct < pts[1].ReductionPct) {
		t.Fatalf("1 L should underperform 4 L: %+v", pts)
	}
	gain := pts[2].ReductionPct - pts[1].ReductionPct
	if gain < 0 {
		t.Fatalf("more wax should not hurt: %+v", pts)
	}
	if gain > pts[1].ReductionPct {
		t.Fatalf("doubling volume should show diminishing returns: %+v", pts)
	}
}

func TestMaterialSweepValidation(t *testing.T) {
	if _, err := PMTSweep(10, nil, []float64{22}); err == nil {
		t.Fatal("empty temps should fail")
	}
	if _, err := VolumeSweep(10, []float64{4}, nil); err == nil {
		t.Fatal("empty grid should fail")
	}
}
