module vmt

go 1.22
