package main

import (
	"flag"
	"io"
	"math"
	"strings"
	"testing"
)

// FuzzBuildSweep drives the sweep CLI's flag parsing and range
// validation with arbitrary argv strings. The contract buildSweep
// gives main: never panic, and any (args, nil) return describes a
// sweep the dispatcher can run — a known kind, a sane cluster size,
// and (for the gv kind) a non-empty all-finite grid.
func FuzzBuildSweep(f *testing.F) {
	f.Add("")
	f.Add("-kind gv -servers 100 -from 10 -to 30 -step 2")
	f.Add("-kind threshold -gv 22")
	f.Add("-kind inlet -policy vmt-wa -runs 5")
	f.Add("-kind pmt -servers 50")
	f.Add("-spec results/specs/gv_sweep.json")
	f.Add("-kind gv -from 30 -to 10 -step 2")
	f.Add("-kind gv -step 0")
	f.Add("-kind gv -step -2")
	f.Add("-kind gv -from NaN")
	f.Add("-kind gv -to Inf")
	f.Add("-kind gv -step 1e-9 -from 0 -to 1e9")
	f.Add("-kind inlet -runs 0")
	f.Add("-servers -5")
	f.Add("-kind nonsense")
	f.Add("-unknown-flag x")
	f.Add("--")
	f.Add("-h")

	f.Fuzz(func(t *testing.T, argv string) {
		args := strings.Fields(argv)
		fs := flag.NewFlagSet("vmtsweep", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		a, err := buildSweep(fs, args)
		if err != nil {
			return
		}
		if a.Servers < 1 {
			t.Fatalf("buildSweep accepted %q with %d servers", argv, a.Servers)
		}
		if a.SpecPath != "" {
			return // the spec file carries its own validated grid
		}
		switch a.Kind {
		case "gv":
			if len(a.Grid) == 0 {
				t.Fatalf("buildSweep accepted %q with an empty grid", argv)
			}
			for _, gv := range a.Grid {
				if math.IsNaN(gv) || math.IsInf(gv, 0) {
					t.Fatalf("buildSweep accepted %q with non-finite grid point %v", argv, gv)
				}
			}
		case "threshold", "inlet", "pmt", "volume":
			if a.Kind == "inlet" && a.Runs < 1 {
				t.Fatalf("buildSweep accepted %q with %d runs", argv, a.Runs)
			}
		default:
			t.Fatalf("buildSweep accepted unknown kind %q from %q", a.Kind, argv)
		}
	})
}
