// Command vmtsweep runs parameter sweeps over the VMT design space:
// the grouping value (Figure 18), the wax threshold (Figure 17), and
// inlet temperature variation (Figures 19–20).
//
// Usage:
//
//	vmtsweep -kind gv -servers 100 -from 10 -to 30 -step 2
//	vmtsweep -kind threshold -gv 22
//	vmtsweep -kind inlet -policy vmt-wa -runs 5
//	vmtsweep -kind fault -servers 100 -gv 22
//	vmtsweep -kind gv -sweep-workers 2 -progress
//	vmtsweep -spec results/specs/gv_sweep.json
//
// With -spec, the sweep is read from a declarative spec file (see
// internal/experiment and EXPERIMENTS.md): the grid, the baseline, and
// the reducer all come from the file, and the rows it reduces to are
// printed as a table. The -from/-to/-step range is validated before
// any simulation starts.
//
// Observability (see internal/cliobs): the -trace, -metrics,
// -cpuprofile and -debug-addr flags observe every run of the sweep —
// traces are tagged per run so Perfetto shows one track per point.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"vmt"
	"vmt/internal/cliobs"
	"vmt/internal/experiment"
	"vmt/internal/report"
)

func main() {
	build := registerSweepFlags(flag.CommandLine)
	obs := cliobs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	args, err := build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vmtsweep: %v\n", err)
		os.Exit(1)
	}
	if err := obs.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "vmtsweep: %v\n", err)
		os.Exit(1)
	}

	batch := vmt.BatchOptions{Workers: args.Workers}
	if args.Progress {
		batch.Progress = os.Stderr
	}

	switch {
	case args.SpecPath != "":
		err = runSpecFile(args.SpecPath, batch)
	case args.Kind == "gv":
		err = sweepGV(vmt.Policy(args.Policy), args.Servers, args.Grid, batch)
	case args.Kind == "threshold":
		err = sweepThreshold(args.Servers, args.GV, batch)
	case args.Kind == "inlet":
		err = sweepInlet(vmt.Policy(args.Policy), args.Servers, args.Runs)
	case args.Kind == "fault":
		err = sweepFault(args.Servers, args.GV)
	case args.Kind == "corr":
		err = sweepCorrelated(args.Servers, args.GV)
	default: // pmt, volume — buildSweep rejected everything else
		err = sweepMaterial(args.Servers, args.Kind)
	}
	// Flush trace/metrics/profile artifacts before any exit: os.Exit
	// would skip deferred closes.
	if cerr := obs.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("observability: %w", cerr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vmtsweep: %v\n", err)
		os.Exit(1)
	}
}

// runSpecFile decodes a spec file, executes it through the experiment
// engine (named reducer included), and prints the reduced rows.
func runSpecFile(path string, batch vmt.BatchOptions) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	spec, err := experiment.DecodeSpec(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	rep, err := vmt.RunSpec(spec, batch)
	if err != nil {
		return err
	}
	return renderSpecReport(rep)
}

// renderSpecReport tabulates a reduced spec: one column per surviving
// axis label (spec axis order), then the value columns sorted by name.
func renderSpecReport(rep *vmt.SpecReport) error {
	var labels []string
	if len(rep.Rows) > 0 {
		for _, ax := range rep.Spec.Axes {
			if _, ok := rep.Rows[0].Labels[ax.Name]; ok {
				labels = append(labels, ax.Name)
			}
		}
		// Derived labels (e.g. best_variant) after the axis columns.
		var extras []string
		for name := range rep.Rows[0].Labels { //vmtlint:allow maporder extras are sorted immediately below
			known := false
			for _, l := range labels {
				known = known || l == name
			}
			if !known {
				extras = append(extras, name)
			}
		}
		sort.Strings(extras)
		labels = append(labels, extras...)
		var values []string
		for name := range rep.Rows[0].Values { //vmtlint:allow maporder values are sorted immediately below
			values = append(values, name)
		}
		sort.Strings(values)
		labels = append(labels, values...)
	}
	title := rep.Spec.Name
	if rep.Spec.Description != "" {
		title += ": " + rep.Spec.Description
	}
	tb := report.Table{Title: title, Headers: labels}
	for _, row := range rep.Rows {
		cells := make([]any, 0, len(labels))
		for _, name := range labels {
			if v, ok := row.Values[name]; ok {
				cells = append(cells, fmt.Sprintf("%.4f", v))
			} else {
				cells = append(cells, fmt.Sprintf("%v", row.Labels[name]))
			}
		}
		tb.AddRow(cells...)
	}
	return tb.Render(os.Stdout)
}

func sweepGV(policy vmt.Policy, servers int, gvs []float64, batch vmt.BatchOptions) error {
	pts, err := vmt.GVSweepOpts(servers, policy, gvs, batch)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   fmt.Sprintf("Peak cooling load reduction vs GV (%s, %d servers)", policy, servers),
		Headers: []string{"GV", "Reduction (%)"},
	}
	for _, p := range pts {
		tb.AddRow(fmt.Sprintf("%g", p.GV), fmt.Sprintf("%.2f", p.ReductionPct))
	}
	return tb.Render(os.Stdout)
}

func sweepThreshold(servers int, gv float64, batch vmt.BatchOptions) error {
	pts, err := vmt.WaxThresholdSweepOpts(servers, gv,
		[]float64{0.85, 0.90, 0.95, 0.98, 0.99, 1.00}, batch)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   fmt.Sprintf("Peak cooling load reduction vs wax threshold (VMT-WA, GV=%g, %d servers)", gv, servers),
		Headers: []string{"Threshold", "Reduction (%)"},
	}
	for _, p := range pts {
		tb.AddRow(fmt.Sprintf("%.2f", p.WaxThreshold), fmt.Sprintf("%.2f", p.ReductionPct))
	}
	return tb.Render(os.Stdout)
}

func sweepInlet(policy vmt.Policy, servers, runs int) error {
	gvs := []float64{16, 18, 20, 22, 24, 26, 28}
	pts, err := vmt.InletVariationStudy(servers, policy, gvs, []float64{0, 1, 2}, runs)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   fmt.Sprintf("Peak reduction vs GV with inlet variation (%s, avg of %d runs)", policy, runs),
		Headers: []string{"GV", "Stdev (°C)", "Reduction (%)"},
	}
	for _, p := range pts {
		tb.AddRow(fmt.Sprintf("%g", p.GV), fmt.Sprintf("%g", p.StdevC), fmt.Sprintf("%.2f", p.ReductionPct))
	}
	return tb.Render(os.Stdout)
}

func sweepFault(servers int, gv float64) error {
	rates := []float64{0, 0.002, 0.01, 0.05}
	rows, err := vmt.RunFaultStudy(servers, rates, gv, 1)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title: fmt.Sprintf("Graceful degradation under injected crashes (GV=%g, %d servers, 2h repairs)",
			gv, servers),
		Headers: []string{"Failures/h", "Policy", "Reduction (%)", "Drops (%)", "Crashes", "Evacuated", "Lost"},
	}
	for _, r := range rows {
		tb.AddRow(fmt.Sprintf("%g", r.RatePerHour), string(r.Policy),
			fmt.Sprintf("%.2f", r.ReductionPct), fmt.Sprintf("%.3f", r.DropPct),
			fmt.Sprintf("%d", r.Crashes), fmt.Sprintf("%d", r.EvacuatedJobs),
			fmt.Sprintf("%d", r.LostJobs))
	}
	return tb.Render(os.Stdout)
}

func sweepCorrelated(servers int, gv float64) error {
	rows, err := vmt.RunCorrelatedFaultStudy(servers, gv, 1)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title: fmt.Sprintf("Peak reduction under correlated domain failures and Byzantine reports (GV=%g, %d servers)",
			gv, servers),
		Headers: []string{"Correlation", "Policy", "Reduction (%)", "Drops (%)", "Crashes", "Domain trips", "Lost", "Quarantined"},
	}
	for _, r := range rows {
		tb.AddRow(r.Correlation, string(r.Policy),
			fmt.Sprintf("%.2f", r.ReductionPct), fmt.Sprintf("%.3f", r.DropPct),
			fmt.Sprintf("%d", r.Crashes), fmt.Sprintf("%d", r.DomainTrips),
			fmt.Sprintf("%d", r.LostJobs), fmt.Sprintf("%d", r.ReportsQuarantined))
	}
	return tb.Render(os.Stdout)
}

func sweepMaterial(servers int, kind string) error {
	grid := []float64{18, 20, 22, 24, 26}
	var (
		pts   []vmt.MaterialSweepPoint
		err   error
		title string
		unit  string
	)
	if kind == "pmt" {
		pts, err = vmt.PMTSweep(servers, []float64{33.7, 34.7, 35.7, 37, 38.5, 40, 42}, grid)
		title = "Peak reduction vs wax melting temperature (VMT-TA, GV retuned per point)"
		unit = "PMT (°C)"
	} else {
		pts, err = vmt.VolumeSweep(servers, []float64{1, 2, 3, 4, 5, 6, 8}, grid)
		title = "Peak reduction vs wax volume per server (VMT-TA, GV retuned per point)"
		unit = "Volume (L)"
	}
	if err != nil {
		return err
	}
	tb := report.Table{Title: title, Headers: []string{unit, "Reduction (%)", "Best GV"}}
	for _, p := range pts {
		tb.AddRow(fmt.Sprintf("%g", p.Value), fmt.Sprintf("%.1f", p.ReductionPct),
			fmt.Sprintf("%g", p.BestGV))
	}
	return tb.Render(os.Stdout)
}
