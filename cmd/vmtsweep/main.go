// Command vmtsweep runs parameter sweeps over the VMT design space:
// the grouping value (Figure 18), the wax threshold (Figure 17), and
// inlet temperature variation (Figures 19–20).
//
// Usage:
//
//	vmtsweep -kind gv -servers 100 -from 10 -to 30 -step 2
//	vmtsweep -kind threshold -gv 22
//	vmtsweep -kind inlet -policy vmt-wa -runs 5
//	vmtsweep -kind gv -sweep-workers 2 -progress
//
// Observability (see internal/cliobs): the -trace, -metrics,
// -cpuprofile and -debug-addr flags observe every run of the sweep —
// traces are tagged per run so Perfetto shows one track per point.
package main

import (
	"flag"
	"fmt"
	"os"

	"vmt"
	"vmt/internal/cliobs"
	"vmt/internal/report"
)

func main() {
	kind := flag.String("kind", "gv", "sweep kind: gv, threshold, inlet, pmt, volume")
	policy := flag.String("policy", "vmt-ta", "policy for gv/inlet sweeps: vmt-ta or vmt-wa")
	servers := flag.Int("servers", 100, "cluster size")
	gv := flag.Float64("gv", 22, "grouping value (threshold sweep)")
	from := flag.Float64("from", 10, "sweep start (gv sweep)")
	to := flag.Float64("to", 30, "sweep end (gv sweep)")
	step := flag.Float64("step", 2, "sweep step (gv sweep)")
	runs := flag.Int("runs", 5, "runs per point (inlet sweep)")
	sweepWorkers := flag.Int("sweep-workers", 0,
		"concurrent sweep points for gv/threshold sweeps (0 = GOMAXPROCS); results are identical for any value")
	progress := flag.Bool("progress", false, "print per-run progress to stderr (gv/threshold sweeps)")
	obs := cliobs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if err := obs.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "vmtsweep: %v\n", err)
		os.Exit(1)
	}

	batch := vmt.BatchOptions{Workers: *sweepWorkers}
	if *progress {
		batch.Progress = os.Stderr
	}

	var err error
	switch *kind {
	case "gv":
		err = sweepGV(vmt.Policy(*policy), *servers, *from, *to, *step, batch)
	case "threshold":
		err = sweepThreshold(*servers, *gv, batch)
	case "inlet":
		err = sweepInlet(vmt.Policy(*policy), *servers, *runs)
	case "pmt":
		err = sweepMaterial(*servers, "pmt")
	case "volume":
		err = sweepMaterial(*servers, "volume")
	default:
		err = fmt.Errorf("unknown sweep kind %q", *kind)
	}
	// Flush trace/metrics/profile artifacts before any exit: os.Exit
	// would skip deferred closes.
	if cerr := obs.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("observability: %w", cerr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vmtsweep: %v\n", err)
		os.Exit(1)
	}
}

func sweepGV(policy vmt.Policy, servers int, from, to, step float64, batch vmt.BatchOptions) error {
	if step <= 0 || to < from {
		return fmt.Errorf("bad sweep range %v..%v step %v", from, to, step)
	}
	var gvs []float64
	for gv := from; gv <= to+1e-9; gv += step {
		gvs = append(gvs, gv)
	}
	pts, err := vmt.GVSweepOpts(servers, policy, gvs, batch)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   fmt.Sprintf("Peak cooling load reduction vs GV (%s, %d servers)", policy, servers),
		Headers: []string{"GV", "Reduction (%)"},
	}
	for _, p := range pts {
		tb.AddRow(fmt.Sprintf("%g", p.GV), fmt.Sprintf("%.2f", p.ReductionPct))
	}
	return tb.Render(os.Stdout)
}

func sweepThreshold(servers int, gv float64, batch vmt.BatchOptions) error {
	pts, err := vmt.WaxThresholdSweepOpts(servers, gv,
		[]float64{0.85, 0.90, 0.95, 0.98, 0.99, 1.00}, batch)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   fmt.Sprintf("Peak cooling load reduction vs wax threshold (VMT-WA, GV=%g, %d servers)", gv, servers),
		Headers: []string{"Threshold", "Reduction (%)"},
	}
	for _, p := range pts {
		tb.AddRow(fmt.Sprintf("%.2f", p.WaxThreshold), fmt.Sprintf("%.2f", p.ReductionPct))
	}
	return tb.Render(os.Stdout)
}

func sweepInlet(policy vmt.Policy, servers, runs int) error {
	gvs := []float64{16, 18, 20, 22, 24, 26, 28}
	pts, err := vmt.InletVariationStudy(servers, policy, gvs, []float64{0, 1, 2}, runs)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   fmt.Sprintf("Peak reduction vs GV with inlet variation (%s, avg of %d runs)", policy, runs),
		Headers: []string{"GV", "Stdev (°C)", "Reduction (%)"},
	}
	for _, p := range pts {
		tb.AddRow(fmt.Sprintf("%g", p.GV), fmt.Sprintf("%g", p.StdevC), fmt.Sprintf("%.2f", p.ReductionPct))
	}
	return tb.Render(os.Stdout)
}

func sweepMaterial(servers int, kind string) error {
	grid := []float64{18, 20, 22, 24, 26}
	var (
		pts   []vmt.MaterialSweepPoint
		err   error
		title string
		unit  string
	)
	if kind == "pmt" {
		pts, err = vmt.PMTSweep(servers, []float64{33.7, 34.7, 35.7, 37, 38.5, 40, 42}, grid)
		title = "Peak reduction vs wax melting temperature (VMT-TA, GV retuned per point)"
		unit = "PMT (°C)"
	} else {
		pts, err = vmt.VolumeSweep(servers, []float64{1, 2, 3, 4, 5, 6, 8}, grid)
		title = "Peak reduction vs wax volume per server (VMT-TA, GV retuned per point)"
		unit = "Volume (L)"
	}
	if err != nil {
		return err
	}
	tb := report.Table{Title: title, Headers: []string{unit, "Reduction (%)", "Best GV"}}
	for _, p := range pts {
		tb.AddRow(fmt.Sprintf("%g", p.Value), fmt.Sprintf("%.1f", p.ReductionPct),
			fmt.Sprintf("%g", p.BestGV))
	}
	return tb.Render(os.Stdout)
}
