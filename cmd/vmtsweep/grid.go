package main

import (
	"flag"
	"fmt"
	"math"
)

// sweepArgs is the validated sweep request: the kind, its parameters,
// and the already-expanded GV grid for the range-driven kinds.
type sweepArgs struct {
	Kind    string
	Policy  string
	Servers int
	GV      float64
	// Grid is the expanded -from/-to/-step grid (gv kind only).
	Grid []float64
	Runs int
	// SpecPath executes a spec file instead of a built-in kind.
	SpecPath string
	Workers  int
	Progress bool
}

// gvGrid expands and validates a -from/-to/-step range up front, so a
// bad range fails before any simulation starts. NaN and infinite
// bounds, non-positive or non-finite steps, and inverted ranges are
// all rejected.
func gvGrid(from, to, step float64) ([]float64, error) {
	for name, v := range map[string]float64{"-from": from, "-to": to, "-step": step} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%s must be finite, got %v", name, v)
		}
	}
	if step <= 0 {
		return nil, fmt.Errorf("-step must be positive, got %v", step)
	}
	if from > to {
		return nil, fmt.Errorf("bad sweep range: -from %v exceeds -to %v", from, to)
	}
	// Index-based expansion: accumulating gv += step never terminates
	// when step underflows below from's precision.
	n := math.Floor((to - from + 1e-9) / step)
	const maxPoints = 100000
	if !(n < maxPoints) { // NaN/Inf-proof: rejects overflowed ranges too
		return nil, fmt.Errorf("sweep range %v..%v step %v expands to over %d points", from, to, step, maxPoints)
	}
	grid := make([]float64, 0, int(n)+1)
	for i := 0; float64(i) <= n; i++ {
		grid = append(grid, from+float64(i)*step)
	}
	return grid, nil
}

// registerSweepFlags declares every sweep flag on fs and returns a
// builder that assembles the validated sweepArgs after fs.Parse —
// declaration and validation live together, separate from main's
// observability wiring, so the fuzz harness exercises the exact
// surface the CLI exposes: any argv either produces a validated
// sweepArgs or returns an error, never a panic and never a partial
// sweep.
func registerSweepFlags(fs *flag.FlagSet) func() (sweepArgs, error) {
	kind := fs.String("kind", "gv", "sweep kind: gv, threshold, inlet, pmt, volume, fault, corr")
	policy := fs.String("policy", "vmt-ta", "policy for gv/inlet sweeps: vmt-ta or vmt-wa")
	servers := fs.Int("servers", 100, "cluster size")
	gv := fs.Float64("gv", 22, "grouping value (threshold sweep)")
	from := fs.Float64("from", 10, "sweep start (gv sweep)")
	to := fs.Float64("to", 30, "sweep end (gv sweep)")
	step := fs.Float64("step", 2, "sweep step (gv sweep)")
	runs := fs.Int("runs", 5, "runs per point (inlet sweep)")
	spec := fs.String("spec", "", "run a declarative spec file instead of a -kind sweep")
	workers := fs.Int("sweep-workers", 0,
		"concurrent sweep points (0 = GOMAXPROCS); results are identical for any value")
	progress := fs.Bool("progress", false, "print per-run progress to stderr")
	return func() (sweepArgs, error) {
		a := sweepArgs{
			Kind:     *kind,
			Policy:   *policy,
			Servers:  *servers,
			GV:       *gv,
			Runs:     *runs,
			SpecPath: *spec,
			Workers:  *workers,
			Progress: *progress,
		}
		if a.Servers < 1 {
			return sweepArgs{}, fmt.Errorf("-servers must be at least 1, got %d", a.Servers)
		}
		if a.SpecPath != "" {
			return a, nil // the spec file carries its own grid
		}
		switch a.Kind {
		case "gv":
			grid, err := gvGrid(*from, *to, *step)
			if err != nil {
				return sweepArgs{}, err
			}
			a.Grid = grid
		case "threshold", "pmt", "volume", "fault", "corr":
		case "inlet":
			if a.Runs < 1 {
				return sweepArgs{}, fmt.Errorf("-runs must be at least 1, got %d", a.Runs)
			}
		default:
			return sweepArgs{}, fmt.Errorf("unknown sweep kind %q", a.Kind)
		}
		return a, nil
	}
}

// buildSweep parses args (argv without the program name) into a
// validated sweepArgs — the single entry point main and the fuzz
// harness share.
func buildSweep(fs *flag.FlagSet, args []string) (sweepArgs, error) {
	build := registerSweepFlags(fs)
	if err := fs.Parse(args); err != nil {
		return sweepArgs{}, err
	}
	return build()
}
