package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vmt/internal/telemetry"
)

func fleetFixture() []*telemetry.FleetSnapshot {
	snaps := make([]*telemetry.FleetSnapshot, 0, 8)
	for tick := int64(1); tick <= 8; tick++ {
		snap := &telemetry.FleetSnapshot{
			Tick:         tick,
			SimNS:        tick * 60e9,
			CoolingLoadW: 1000 + float64(tick),
			TotalPowerW:  5000,
		}
		for id := 0; id < 4; id++ {
			group := "cold"
			if id < 2 {
				group = "hot"
			}
			snap.Servers = append(snap.Servers, telemetry.ServerState{
				ID:       id,
				AirTempC: 22 + float64(id)/10,
				MeltFrac: float64(tick) / 10,
				Group:    group,
			})
		}
		snaps = append(snaps, snap)
	}
	return snaps
}

// clone round-trips through the NDJSON log so the copy is independent.
func cloneFleet(t *testing.T, snaps []*telemetry.FleetSnapshot) []*telemetry.FleetSnapshot {
	t.Helper()
	var buf bytes.Buffer
	log := telemetry.NewNDJSONFleetLog(&buf)
	for _, s := range snaps {
		log.EmitFleet(s)
	}
	if err := log.Err(); err != nil {
		t.Fatal(err)
	}
	out, err := telemetry.ReadFleetLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDiffFleet(t *testing.T) {
	a := fleetFixture()

	if div := diffFleet(a, cloneFleet(t, a)); div != nil {
		t.Fatalf("identical logs diverged: %+v", div)
	}

	// One-ulp melt-fraction drift at tick 5, server 2 — the exact
	// location must be reported.
	b := cloneFleet(t, a)
	b[4].Servers[2].MeltFrac = math.Nextafter(b[4].Servers[2].MeltFrac, 1)
	div := diffFleet(a, b)
	if div == nil {
		t.Fatal("one-bit mutation not detected")
	}
	if div.Where != "tick 5, server 2" || div.Field != "melt_frac" {
		t.Fatalf("divergence mislocated: %+v", div)
	}

	// An earlier fleet-level difference wins over the later mutation.
	b[1].CoolingLoadW++
	div = diffFleet(a, b)
	if div.Where != "tick 2" || div.Field != "cooling_load_w" {
		t.Fatalf("earliest divergence not reported: %+v", div)
	}

	// A truncated log diverges at the first missing tick.
	div = diffFleet(a, cloneFleet(t, a)[:6])
	if div == nil || div.Field != "stream length" || !strings.Contains(div.Where, "tick 7") {
		t.Fatalf("truncation mislocated: %+v", div)
	}
}

func windowFixture(run int) []telemetry.WindowRecord {
	recs := make([]telemetry.WindowRecord, 0, 12)
	for _, series := range []string{"cooling_load_w", "mean_melt_frac"} {
		for w := int64(0); w < 4; w++ {
			recs = append(recs, telemetry.WindowRecord{
				Series: series, Run: run, Window: w, StartTick: w * 60,
				Count: 60, Min: 1, Max: 3, Mean: 2, P99: 3, Sum: 120,
			})
		}
	}
	return recs
}

func TestDiffWindows(t *testing.T) {
	a := windowFixture(0)
	if div := diffWindows(a, windowFixture(0)); div != nil {
		t.Fatalf("identical streams diverged: %+v", div)
	}

	// Interleaving order must not matter: reverse one side.
	b := windowFixture(0)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	if div := diffWindows(a, b); div != nil {
		t.Fatalf("reordered identical streams diverged: %+v", div)
	}

	// Two mutations: the one with the earlier start tick is reported.
	b = windowFixture(0)
	b[3].P99 = 4       // cooling_load_w window 3, start tick 180
	b[4+1].Sum = 121.5 // mean_melt_frac window 1, start tick 60
	div := diffWindows(a, b)
	if div == nil {
		t.Fatal("mutations not detected")
	}
	if !strings.Contains(div.Where, "mean_melt_frac window 1") || div.Field != "sum" {
		t.Fatalf("earliest window divergence not reported: %+v", div)
	}

	// A missing window is a divergence, not a silent skip.
	div = diffWindows(a, windowFixture(0)[1:])
	if div == nil || div.Field != "presence" {
		t.Fatalf("missing window not reported: %+v", div)
	}
}

func spanFixture() []telemetry.SpanEvent {
	evs := make([]telemetry.SpanEvent, 0, 12)
	for tick := 1; tick <= 4; tick++ {
		at := time.Duration(tick) * time.Minute
		evs = append(evs,
			telemetry.SpanEvent{Name: "physics", At: at, Args: map[string]float64{"cooling_load_w": 1000 + float64(tick)}},
			telemetry.SpanEvent{Name: "schedule", At: at},
			telemetry.SpanEvent{Name: "sample", At: at, Args: map[string]float64{"max_cpu_temp_c": 60}},
		)
	}
	return evs
}

func TestDiffSpansIgnoresWallTimings(t *testing.T) {
	a := spanFixture()
	b := spanFixture()
	for i := range b {
		b[i].WallStart = time.Duration(i) * time.Millisecond
		b[i].Wall = time.Duration(i+1) * time.Microsecond
		b[i].AllocBytes = uint64(i * 1024)
	}
	if div := diffSpans(a, b); div != nil {
		t.Fatalf("wall-timing differences should be ignored: %+v", div)
	}

	b[5].At += time.Second
	div := diffSpans(a, b)
	if div == nil || div.Field != "sim_ns" {
		t.Fatalf("sim-time divergence not reported: %+v", div)
	}

	b = spanFixture()
	b[0].Args["cooling_load_w"]++
	div = diffSpans(a, b)
	if div == nil || div.Field != "args.cooling_load_w" || !strings.Contains(div.Where, "physics") {
		t.Fatalf("args divergence not reported: %+v", div)
	}
}

// TestDiffFilesEndToEnd writes real telemetry artifacts and drives the
// full path main uses: detection, reading, and diffing.
func TestDiffFilesEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, emit func(*telemetry.NDJSONFleetLog)) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		log := telemetry.NewNDJSONFleetLog(f)
		emit(log)
		if err := log.Err(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	emitAll := func(snaps []*telemetry.FleetSnapshot) func(*telemetry.NDJSONFleetLog) {
		return func(log *telemetry.NDJSONFleetLog) {
			for _, s := range snaps {
				log.EmitFleet(s)
			}
		}
	}
	base := fleetFixture()
	pa := write("a.ndjson", emitAll(base))
	pb := write("b.ndjson", emitAll(base))

	div, err := diffFiles(pa, pb, "auto")
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("identical files diverged: %+v", div)
	}

	mutated := cloneFleet(t, base)
	mutated[2].Servers[1].AirTempC += 1e-12
	pc := write("c.ndjson", emitAll(mutated))
	div, err = diffFiles(pa, pc, "auto")
	if err != nil {
		t.Fatal(err)
	}
	if div == nil || div.Where != "tick 3, server 1" || div.Field != "air_temp_c" {
		t.Fatalf("mutation mislocated: %+v", div)
	}

	// Format mismatch is an error, not a bogus diff.
	wf := filepath.Join(dir, "w.ndjson")
	f, err := os.Create(wf)
	if err != nil {
		t.Fatal(err)
	}
	sink := telemetry.NewNDJSONSink(f)
	sink.EmitWindow(telemetry.WindowRecord{Series: "x", Count: 1, Min: 1, Max: 1, Mean: 1, P99: 1, Sum: 1})
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := diffFiles(pa, wf, "auto"); err == nil {
		t.Fatal("format mismatch not rejected")
	}
}
