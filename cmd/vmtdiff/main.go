// Command vmtdiff finds the first divergence between two telemetry
// streams from vmt runs — the determinism debugger: when two runs that
// should be bit-identical are not, vmtdiff replays their streamed
// telemetry and pinpoints the earliest tick, field, and server where
// they part ways, instead of leaving you to eyeball two multi-megabyte
// logs.
//
// Usage:
//
//	vmtdiff a.ndjson b.ndjson
//	vmtdiff -format fleet runA-fleet.ndjson runB-fleet.ndjson
//
// Both inputs must be the same kind of stream; the format is detected
// from the first record (override with -format):
//
//	fleet    NDJSON fleet log (vmtsim -fleet-log): per-server state per
//	         tick — divergences name the tick, server, and field
//	windows  NDJSON window stream (vmtsim -stream): sealed aggregation
//	         windows — divergences name the series, window, and field
//	spans    JSONL span trace (vmtsim -trace out.jsonl): engine band
//	         spans — wall timings and allocation deltas are ignored,
//	         only the deterministic fields (name, run, sim time, args)
//	         are compared
//
// Exit status: 0 when the streams are identical in their deterministic
// fields, 1 when a divergence is found (reported on stdout), 2 on
// usage or read errors.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("vmtdiff", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	format := fs.String("format", "auto", "stream format: auto, fleet, windows, or spans")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: vmtdiff [-format auto|fleet|windows|spans] A B")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	pathA, pathB := fs.Arg(0), fs.Arg(1)

	div, err := diffFiles(pathA, pathB, *format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vmtdiff: %v\n", err)
		return 2
	}
	if div == nil {
		fmt.Fprintf(out, "identical: %s and %s agree on every deterministic field\n", pathA, pathB)
		return 0
	}
	fmt.Fprintln(out, div.Report(pathA, pathB))
	return 1
}
