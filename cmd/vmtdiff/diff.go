package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"vmt/internal/telemetry"
)

// Divergence locates the first disagreement between two streams.
// Floats are compared bit-for-bit (math.Float64bits): the repository's
// determinism contract is bit-identity, so a one-ulp drift is a real
// divergence, and NaN/-0 compare by representation rather than IEEE
// semantics.
type Divergence struct {
	// Where locates the record: tick and server for fleet logs, series
	// and window for window streams, event index and sim time for span
	// traces.
	Where string
	// Field names the first differing field at that location.
	Field string
	// A and B render the two values.
	A, B string
}

// Report formats the divergence for the command's stdout.
func (d *Divergence) Report(pathA, pathB string) string {
	return fmt.Sprintf("first divergence at %s: field %s\n  %s: %s\n  %s: %s",
		d.Where, d.Field, pathA, d.A, pathB, d.B)
}

// diffFiles loads both paths as the given format ("auto" detects from
// the first record) and returns the first divergence, or nil when the
// streams agree on every deterministic field.
func diffFiles(pathA, pathB, format string) (*Divergence, error) {
	if format == "auto" {
		fa, err := detectFormat(pathA)
		if err != nil {
			return nil, err
		}
		fb, err := detectFormat(pathB)
		if err != nil {
			return nil, err
		}
		if fa != fb {
			return nil, fmt.Errorf("format mismatch: %s is a %s stream, %s is a %s stream", pathA, fa, pathB, fb)
		}
		format = fa
	}
	switch format {
	case "fleet":
		a, err := readFleet(pathA)
		if err != nil {
			return nil, err
		}
		b, err := readFleet(pathB)
		if err != nil {
			return nil, err
		}
		return diffFleet(a, b), nil
	case "windows":
		a, err := readWindows(pathA)
		if err != nil {
			return nil, err
		}
		b, err := readWindows(pathB)
		if err != nil {
			return nil, err
		}
		return diffWindows(a, b), nil
	case "spans":
		a, err := readSpans(pathA)
		if err != nil {
			return nil, err
		}
		b, err := readSpans(pathB)
		if err != nil {
			return nil, err
		}
		return diffSpans(a, b), nil
	default:
		return nil, fmt.Errorf("unknown format %q (want auto, fleet, windows, or spans)", format)
	}
}

// detectFormat sniffs the stream kind from the keys of the first
// non-blank line: fleet snapshots carry "servers", window records
// "series", span events "name".
func detectFormat(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line, &probe); err != nil {
			return "", fmt.Errorf("%s: not an NDJSON telemetry stream: %w", path, err)
		}
		switch {
		case probe["servers"] != nil || (probe["tick"] != nil && probe["cooling_load_w"] != nil):
			return "fleet", nil
		case probe["series"] != nil:
			return "windows", nil
		case probe["name"] != nil:
			return "spans", nil
		}
		return "", fmt.Errorf("%s: unrecognized record shape (keys match no known stream)", path)
	}
	if err := sc.Err(); err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	return "", fmt.Errorf("%s: empty stream", path)
}

func readFleet(path string) ([]*telemetry.FleetSnapshot, error) {
	return readVia(path, telemetry.ReadFleetLog)
}

func readWindows(path string) ([]telemetry.WindowRecord, error) {
	return readVia(path, telemetry.ReadWindows)
}

func readSpans(path string) ([]telemetry.SpanEvent, error) {
	return readVia(path, telemetry.ReadJSONL)
}

func readVia[T any](path string, read func(io.Reader) ([]T, error)) ([]T, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out, err := read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// sameF64 compares floats bit-for-bit.
func sameF64(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// fdiff builds a Divergence for one differing field.
func fdiff(where, field string, a, b any) *Divergence {
	return &Divergence{Where: where, Field: field, A: fmt.Sprint(a), B: fmt.Sprint(b)}
}

// diffFleet compares two fleet logs tick by tick, servers in ID order,
// returning the earliest differing tick/server/field.
func diffFleet(a, b []*telemetry.FleetSnapshot) *Divergence {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		sa, sb := a[i], b[i]
		where := fmt.Sprintf("tick %d", sa.Tick)
		switch {
		case sa.Tick != sb.Tick:
			return fdiff(fmt.Sprintf("record %d", i), "tick", sa.Tick, sb.Tick)
		case sa.SimNS != sb.SimNS:
			return fdiff(where, "sim_ns", sa.SimNS, sb.SimNS)
		case sa.Run != sb.Run:
			return fdiff(where, "run", sa.Run, sb.Run)
		case !sameF64(sa.CoolingLoadW, sb.CoolingLoadW):
			return fdiff(where, "cooling_load_w", sa.CoolingLoadW, sb.CoolingLoadW)
		case !sameF64(sa.TotalPowerW, sb.TotalPowerW):
			return fdiff(where, "total_power_w", sa.TotalPowerW, sb.TotalPowerW)
		case len(sa.Servers) != len(sb.Servers):
			return fdiff(where, "server count", len(sa.Servers), len(sb.Servers))
		}
		for j := range sa.Servers {
			va, vb := sa.Servers[j], sb.Servers[j]
			where := fmt.Sprintf("tick %d, server %d", sa.Tick, va.ID)
			switch {
			case va.ID != vb.ID:
				return fdiff(fmt.Sprintf("tick %d, server index %d", sa.Tick, j), "id", va.ID, vb.ID)
			case !sameF64(va.AirTempC, vb.AirTempC):
				return fdiff(where, "air_temp_c", va.AirTempC, vb.AirTempC)
			case !sameF64(va.MeltFrac, vb.MeltFrac):
				return fdiff(where, "melt_frac", va.MeltFrac, vb.MeltFrac)
			case va.Group != vb.Group:
				return fdiff(where, "group", va.Group, vb.Group)
			case va.Crashed != vb.Crashed:
				return fdiff(where, "crashed", va.Crashed, vb.Crashed)
			}
		}
	}
	if len(a) != len(b) {
		return lengthDiff("snapshots", len(a), len(b), func(k int) string {
			if k < len(a) {
				return fmt.Sprintf("tick %d", a[k].Tick)
			}
			return fmt.Sprintf("tick %d", b[k].Tick)
		})
	}
	return nil
}

// windowKey identifies one sealed window across interleaved streams.
type windowKey struct {
	Run    int
	Series string
	Window int64
}

// diffWindows compares two window streams. Records from concurrent
// runs may legally interleave differently, so windows are matched by
// (run, series, window index) and compared in start-tick order — the
// earliest differing window wins regardless of file order.
func diffWindows(a, b []telemetry.WindowRecord) *Divergence {
	index := func(recs []telemetry.WindowRecord) map[windowKey]telemetry.WindowRecord {
		m := make(map[windowKey]telemetry.WindowRecord, len(recs))
		for _, rec := range recs {
			m[windowKey{rec.Run, rec.Series, rec.Window}] = rec
		}
		return m
	}
	ma, mb := index(a), index(b)
	keys := make([]windowKey, 0, len(ma))
	for k := range ma { //vmtlint:allow maporder keys are sorted below before use
		keys = append(keys, k)
	}
	for k := range mb { //vmtlint:allow maporder keys are sorted below before use
		if _, ok := ma[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		ki, kj := keys[i], keys[j]
		ri, iOK := ma[ki]
		if !iOK {
			ri = mb[ki]
		}
		rj, jOK := ma[kj]
		if !jOK {
			rj = mb[kj]
		}
		if ri.StartTick != rj.StartTick {
			return ri.StartTick < rj.StartTick
		}
		if ki.Series != kj.Series {
			return ki.Series < kj.Series
		}
		if ki.Run != kj.Run {
			return ki.Run < kj.Run
		}
		return ki.Window < kj.Window
	})
	for _, k := range keys {
		ra, aOK := ma[k]
		rb, bOK := mb[k]
		where := fmt.Sprintf("series %s window %d (start tick %d)", k.Series, k.Window, ra.StartTick)
		if k.Run != 0 {
			where = fmt.Sprintf("run %d, %s", k.Run, where)
		}
		switch {
		case !aOK:
			return fdiff(fmt.Sprintf("series %s window %d (start tick %d)", k.Series, k.Window, rb.StartTick),
				"presence", "missing", "present")
		case !bOK:
			return fdiff(where, "presence", "present", "missing")
		case ra.StartTick != rb.StartTick:
			return fdiff(where, "start_tick", ra.StartTick, rb.StartTick)
		case ra.Count != rb.Count:
			return fdiff(where, "count", ra.Count, rb.Count)
		case !sameF64(ra.Min, rb.Min):
			return fdiff(where, "min", ra.Min, rb.Min)
		case !sameF64(ra.Max, rb.Max):
			return fdiff(where, "max", ra.Max, rb.Max)
		case !sameF64(ra.Mean, rb.Mean):
			return fdiff(where, "mean", ra.Mean, rb.Mean)
		case !sameF64(ra.P99, rb.P99):
			return fdiff(where, "p99", ra.P99, rb.P99)
		case !sameF64(ra.Sum, rb.Sum):
			return fdiff(where, "sum", ra.Sum, rb.Sum)
		}
	}
	return nil
}

// diffSpans compares two span traces event by event on the
// deterministic fields only: name, run, simulation time, and args.
// Wall timings (wall_start_ns, wall_ns) and allocation deltas
// (alloc_b) legitimately differ between runs and are ignored.
func diffSpans(a, b []telemetry.SpanEvent) *Divergence {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		ea, eb := a[i], b[i]
		where := fmt.Sprintf("event %d (sim %v)", i, ea.At)
		switch {
		case ea.Name != eb.Name:
			return fdiff(where, "name", ea.Name, eb.Name)
		case ea.Run != eb.Run:
			return fdiff(where, "run", ea.Run, eb.Run)
		case ea.At != eb.At:
			return fdiff(fmt.Sprintf("event %d", i), "sim_ns", int64(ea.At), int64(eb.At))
		}
		where = fmt.Sprintf("event %d (%s, sim %v)", i, ea.Name, ea.At)
		argKeys := make([]string, 0, len(ea.Args)+len(eb.Args))
		for k := range ea.Args { //vmtlint:allow maporder keys are sorted below before use
			argKeys = append(argKeys, k)
		}
		for k := range eb.Args { //vmtlint:allow maporder keys are sorted below before use
			if _, ok := ea.Args[k]; !ok {
				argKeys = append(argKeys, k)
			}
		}
		sort.Strings(argKeys)
		for _, k := range argKeys {
			va, aOK := ea.Args[k]
			vb, bOK := eb.Args[k]
			field := "args." + k
			switch {
			case !aOK:
				return fdiff(where, field, "(absent)", vb)
			case !bOK:
				return fdiff(where, field, va, "(absent)")
			case !sameF64(va, vb):
				return fdiff(where, field, va, vb)
			}
		}
	}
	if len(a) != len(b) {
		return lengthDiff("events", len(a), len(b), func(k int) string {
			if k < len(a) {
				return fmt.Sprintf("event %d (%s, sim %v)", k, a[k].Name, a[k].At)
			}
			return fmt.Sprintf("event %d (%s, sim %v)", k, b[k].Name, b[k].At)
		})
	}
	return nil
}

// lengthDiff reports a stream that ends while the other continues; the
// divergence is located at the first record the shorter stream lacks.
func lengthDiff(what string, lenA, lenB int, locate func(int) string) *Divergence {
	short := lenA
	if lenB < lenA {
		short = lenB
	}
	return &Divergence{
		Where: locate(short),
		Field: "stream length",
		A:     fmt.Sprintf("%d %s", lenA, what),
		B:     fmt.Sprintf("%d %s", lenB, what),
	}
}
