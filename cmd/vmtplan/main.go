// Command vmtplan is the operator's deployment planner: given a
// datacenter's ambient temperature and workload mix, it answers the
// questions an SRE asks before buying wax — can the fixed 35.7 °C
// paraffin ever melt here, what grouping value should VMT run, what is
// the peak cooling reduction worth, and how does that compare to the
// exotic-wax alternative.
//
// Usage:
//
//	vmtplan                       # plan for the paper's datacenter
//	vmtplan -inlet 24             # a warmer machine room
//	vmtplan -servers 200 -mw 10   # a smaller facility
package main

import (
	"flag"
	"fmt"
	"os"

	"vmt"
	"vmt/internal/energy"
	"vmt/internal/feasibility"
	"vmt/internal/report"
	"vmt/internal/tco"
	"vmt/internal/workload"
)

func main() {
	inlet := flag.Float64("inlet", 22, "mean server inlet temperature (°C)")
	servers := flag.Int("servers", 100, "pilot cluster size for the planning simulations")
	mw := flag.Float64("mw", 25, "facility critical power (MW) for the TCO projection")
	flag.Parse()

	if err := plan(*inlet, *servers, *mw); err != nil {
		fmt.Fprintf(os.Stderr, "vmtplan: %v\n", err)
		os.Exit(1)
	}
}

func plan(inlet float64, servers int, mw float64) error {
	fmt.Printf("Deployment plan: %d-server pilot, %.0f °C inlet, %.0f MW facility\n\n",
		servers, inlet, mw)

	// 1. Feasibility: can anything melt here?
	fp := feasibility.PaperParams()
	fp.InletTempC = inlet
	pt, err := fp.ClassifyMix(workload.PaperMix())
	if err != nil {
		return err
	}
	fmt.Printf("Step 1 — feasibility at this ambient: %s\n", pt.Class)
	fmt.Printf("  balanced-placement peak exhaust: %.1f °C (wax melts at 35.7)\n",
		pt.BalancedTempC)
	fmt.Printf("  hottest achievable concentration: %.1f °C\n\n", pt.SegregatedTempC)
	if pt.Class == feasibility.Neither {
		fmt.Println("No placement policy can melt commercial wax here; do not deploy PCM.")
		return nil
	}

	// 2. Tune the GV for this ambient.
	fmt.Println("Step 2 — tuning the grouping value (simulating the two-day worst case)...")
	grid := vmt.DefaultGVGrid()
	pts, err := vmt.AmbientSweep(servers, []float64{inlet}, grid)
	if err != nil {
		return err
	}
	best := pts[0]
	tb := report.Table{Headers: []string{"Quantity", "Value"}}
	tb.AddRow("Best GV", fmt.Sprintf("%g", best.BestGV))
	tb.AddRow("VMT peak cooling reduction", fmt.Sprintf("%.1f%%", best.VMTReductionPct))
	tb.AddRow("Passive TTS alone", fmt.Sprintf("%.1f%%", best.TTSReductionPct))
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}

	// 3. Price it.
	fmt.Println("\nStep 3 — facility economics:")
	params := tco.PaperParams()
	params.CriticalPowerMW = mw
	out, err := tco.Evaluate(params, best.VMTReductionPct)
	if err != nil {
		return err
	}
	et := report.Table{Headers: []string{"Option", "Value"}}
	et.AddRow("Smaller cooling plant (lifetime savings)",
		fmt.Sprintf("$%.0f", out.GrossCoolingSavingsUSD))
	et.AddRow("Or extra servers under the same plant",
		fmt.Sprintf("%d (+%.1f%%)", out.ExtraServers, out.ExtraServersPct))
	et.AddRow("Commercial wax cost", fmt.Sprintf("$%.0f", params.WaxDeploymentCostUSD()))
	nAlt, err := tco.NParaffinAlternativeCostUSD(params, 30)
	if err != nil {
		return err
	}
	et.AddRow("n-paraffin alternative (30 °C wax, passive)", fmt.Sprintf("$%.0f", nAlt))
	if err := et.Render(os.Stdout); err != nil {
		return err
	}

	// 4. Energy-cost bonus under a time-of-use tariff.
	fmt.Println("\nStep 4 — time-of-use energy bonus (typical 2:1 TOU tariff):")
	es, err := vmt.RunEnergyCostStudy(servers, best.BestGV, energy.TypicalTOU())
	if err != nil {
		return err
	}
	fmt.Printf("  cooling energy in the expensive window: %.1f%% → %.1f%%\n",
		es.PeakShareRR*100, es.PeakShareVMT*100)
	fmt.Printf("  cooling energy bill reduction: %.1f%%\n", es.SavingsPct)

	fmt.Println("\nRecommendation: deploy 4.0 L of commercial 35.7 °C paraffin per server,")
	fmt.Printf("run VMT-WA at GV=%g with the 0.98 wax threshold, and retune the GV\n", best.BestGV)
	fmt.Println("day-ahead if your load is forecastable (see examples/seasons).")
	return nil
}
