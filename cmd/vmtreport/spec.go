package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"vmt"
	"vmt/internal/experiment"
	"vmt/internal/report"
)

// runSpecFile decodes one declarative spec file, executes it through
// the experiment engine, and tabulates the reduced rows.
func runSpecFile(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	spec, err := experiment.DecodeSpec(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	rep, err := vmt.RunSpec(spec, vmt.BatchOptions{})
	if err != nil {
		return err
	}
	title := rep.Spec.Name
	if rep.Spec.Description != "" {
		title += ": " + rep.Spec.Description
	}
	var headers []string
	if len(rep.Rows) > 0 {
		for _, ax := range rep.Spec.Axes {
			if _, ok := rep.Rows[0].Labels[ax.Name]; ok {
				headers = append(headers, ax.Name)
			}
		}
		var extras []string
		for name := range rep.Rows[0].Labels { //vmtlint:allow maporder extras are sorted immediately below
			seen := false
			for _, h := range headers {
				seen = seen || h == name
			}
			if !seen {
				extras = append(extras, name)
			}
		}
		sort.Strings(extras)
		headers = append(headers, extras...)
		var values []string
		for name := range rep.Rows[0].Values { //vmtlint:allow maporder values are sorted immediately below
			values = append(values, name)
		}
		sort.Strings(values)
		headers = append(headers, values...)
	}
	tb := report.Table{Title: title, Headers: headers}
	for _, row := range rep.Rows {
		cells := make([]any, 0, len(headers))
		for _, h := range headers {
			if v, ok := row.Values[h]; ok {
				cells = append(cells, fmt.Sprintf("%.4f", v))
			} else {
				cells = append(cells, fmt.Sprintf("%v", row.Labels[h]))
			}
		}
		tb.AddRow(cells...)
	}
	return tb.Render(out)
}

// emitSpecFiles writes the built-in parameter studies in their
// declarative form — the same specs the studies execute internally —
// so they can be edited and re-run with -spec (or vmtsweep -spec).
func emitSpecFiles(dir string, servers int) error {
	grid := vmt.DefaultGVGrid()
	specs := []experiment.Spec{
		vmt.GVSweepSpec(servers, vmt.PolicyVMTTA, []float64{10, 12, 14, 16, 18, 20, 21, 22, 23, 24, 26, 28, 30}),
		vmt.WaxThresholdSweepSpec(servers, 22, []float64{0.85, 0.90, 0.95, 0.98, 0.99, 1.00}),
		vmt.InletVariationSpec(servers, vmt.PolicyVMTTA, []float64{16, 18, 20, 22, 24, 26, 28}, []float64{0, 1, 2}, 5),
		vmt.AblationSpec(servers, 20),
		vmt.AmbientSweepSpec(servers, []float64{18, 20, 22, 24, 26}, grid),
		vmt.DriftSweepSpec(servers, []float64{1.2, 1.35, 1.5, 1.65, 1.8}, grid),
		vmt.PMTSweepSpec(servers, []float64{33.7, 34.7, 35.7, 37, 38.5, 40, 42}, []float64{18, 20, 22, 24, 26}),
		vmt.VolumeSweepSpec(servers, []float64{1, 2, 3, 4, 5, 6, 8}, []float64{18, 20, 22, 24, 26}),
		vmt.CoolingLoadSpec(servers, vmt.PolicyVMTTA, []float64{20, 22, 24}),
		vmt.FaultStudySpec(servers, []float64{0, 0.002, 0.01, 0.05}, 22, 1),
		vmt.CorrelatedFaultStudySpec(60, 22, 1),
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, spec := range specs {
		path := filepath.Join(dir, spec.Name+".json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := spec.Encode(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
