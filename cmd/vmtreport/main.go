// Command vmtreport regenerates the tables and figures of the VMT
// paper's evaluation from the simulation, printing paper-style rows
// (and ASCII heat maps for the heat-map figures).
//
// Usage:
//
//	vmtreport                 # everything (several minutes of sims)
//	vmtreport -only fig13     # one artifact: table1, table2, fig1,
//	                          # fig2, fig6, fig7, fig8, fig9, fig10,
//	                          # fig11, fig12, fig13, fig14, fig15,
//	                          # fig16, fig17, fig18, fig19, fig20, tco
//	vmtreport -servers 100    # cluster size for the scale-out figures
//	vmtreport -csv dir        # also dump CSV series into dir
//	vmtreport -spec f.json    # execute one declarative spec file
//	vmtreport -emit-specs dir # write the built-in studies as spec files
//
// Beyond the paper's artifacts, the report appends the reproduction's
// extension studies: ext-adapt (ambient/drift adaptability),
// ext-oversub (the more-servers claim validated in simulation),
// ext-ablation (design-choice ablations), and ext-qos (search latency
// under VMT placement).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"vmt"
	"vmt/internal/pcm"
	"vmt/internal/report"
	"vmt/internal/stats"
	"vmt/internal/thermal"
	"vmt/internal/trace"
)

func main() {
	only := flag.String("only", "", "single artifact to regenerate (e.g. fig13, table2, tco)")
	servers := flag.Int("servers", 1000, "cluster size for the scale-out figures (sweeps always use 100)")
	sweepServers := flag.Int("sweep-servers", 100, "cluster size for parameter sweeps")
	csvDir := flag.String("csv", "", "directory to write CSV series into (optional)")
	svgDir := flag.String("svg", "", "directory to write SVG figures into (optional)")
	runs := flag.Int("runs", 5, "runs to average for the inlet-variation figures")
	specPath := flag.String("spec", "", "execute one declarative spec file and print its reduced rows")
	emitSpecs := flag.String("emit-specs", "", "write the built-in parameter studies as spec files into this directory")
	flag.Parse()

	if *specPath != "" {
		if err := runSpecFile(os.Stdout, *specPath); err != nil {
			fmt.Fprintf(os.Stderr, "vmtreport: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *emitSpecs != "" {
		if err := emitSpecFiles(*emitSpecs, *sweepServers); err != nil {
			fmt.Fprintf(os.Stderr, "vmtreport: %v\n", err)
			os.Exit(1)
		}
		return
	}

	r := &reporter{
		out:          os.Stdout,
		servers:      *servers,
		sweepServers: *sweepServers,
		csvDir:       *csvDir,
		svgDir:       *svgDir,
		runs:         *runs,
	}
	artifacts := []struct {
		name string
		fn   func() error
	}{
		{"table1", r.table1},
		{"fig1", r.fig1},
		{"fig2", r.fig2},
		{"fig6", r.fig6},
		{"fig7", r.fig7},
		{"fig8", r.fig8},
		{"fig9", func() error { return r.heatmapFig("fig9", vmt.PolicyRoundRobin, 0) }},
		{"fig10", func() error { return r.heatmapFig("fig10", vmt.PolicyCoolestFirst, 0) }},
		{"table2", r.table2},
		{"table2b", r.table2Fusion},
		{"fig11", func() error { return r.heatmapFig("fig11", vmt.PolicyVMTTA, 22) }},
		{"fig12", func() error { return r.hotGroupTemps("fig12", vmt.PolicyVMTTA, []float64{21, 22, 23, 24, 25, 26}) }},
		{"fig13", func() error { return r.coolingLoads("fig13", vmt.PolicyVMTTA) }},
		{"fig14", func() error { return r.heatmapFig("fig14", vmt.PolicyVMTWA, 20) }},
		{"fig15", func() error { return r.hotGroupTemps("fig15", vmt.PolicyVMTWA, []float64{20, 21, 22, 24, 26}) }},
		{"fig16", func() error { return r.coolingLoads("fig16", vmt.PolicyVMTWA) }},
		{"fig17", r.fig17},
		{"fig18", r.fig18},
		{"fig19", func() error { return r.inletVariation("fig19", vmt.PolicyVMTTA) }},
		{"fig20", func() error { return r.inletVariation("fig20", vmt.PolicyVMTWA) }},
		{"tco", r.tco},
		{"ext-adapt", r.extAdaptability},
		{"ext-oversub", r.extOversubscription},
		{"ext-ablation", r.extAblation},
		{"ext-qos", r.extQoSImpact},
		{"ext-jobstream", r.extJobStream},
		{"ext-adaptive-gv", r.extAdaptiveGV},
		{"ext-zones", r.extZones},
		{"ext-material", r.extMaterial},
	}
	ran := false
	for _, a := range artifacts {
		if *only != "" && !strings.EqualFold(*only, a.name) {
			continue
		}
		ran = true
		fmt.Fprintf(r.out, "\n===== %s =====\n", strings.ToUpper(a.name))
		start := time.Now()
		if err := a.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "vmtreport: %s: %v\n", a.name, err)
			os.Exit(1)
		}
		fmt.Fprintf(r.out, "(%s in %.1fs)\n", a.name, time.Since(start).Seconds())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "vmtreport: unknown artifact %q\n", *only)
		os.Exit(2)
	}
}

type reporter struct {
	out          *os.File
	servers      int
	sweepServers int
	csvDir       string
	svgDir       string
	runs         int
}

// writeSVG renders an SVG artifact into the -svg directory.
func (r *reporter) writeSVG(name string, render func(io.Writer) error) error {
	if r.svgDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.svgDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(r.svgDir, name+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	return render(f)
}

func (r *reporter) writeCSV(name string, names []string, series []*stats.Series) error {
	if r.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(r.csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return report.SeriesCSV(f, names, series)
}

func (r *reporter) table1() error {
	tb := report.Table{
		Title:   "Table I: workloads considered for the scale-out study",
		Headers: []string{"Workload", "CPU Power (W)", "VMT Class"},
	}
	for _, w := range vmt.TableIRows() {
		tb.AddRow(w.Name, fmt.Sprintf("%.1f", w.CPUPowerW), w.Class.String())
	}
	return tb.Render(r.out)
}

func (r *reporter) fig1() error {
	panels, err := vmt.FeasibilityMap(10)
	if err != nil {
		return err
	}
	for _, p := range panels {
		tb := report.Table{
			Title:   fmt.Sprintf("Figure 1 (%s): exhaust temp and region vs work ratio", p.Name),
			Headers: []string{"Work Ratio (%)", "Exhaust Temp (°C)", "Region"},
		}
		for _, pt := range p.Points {
			tb.AddRow(fmt.Sprintf("%.0f", pt.RatioPct),
				fmt.Sprintf("%.1f", pt.BalancedTempC), pt.Class.String())
		}
		if err := tb.Render(r.out); err != nil {
			return err
		}
	}
	return nil
}

// fig2 demonstrates the TTS concept on a single hot server: the wax
// flattens the cooling load relative to the applied power.
func (r *reporter) fig2() error {
	node, err := thermal.NewNode(thermal.PaperServer(), pcm.CommercialParaffin(), 22)
	if err != nil {
		return err
	}
	tr, err := trace.Generate(trace.PaperTwoDay(), time.Minute)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   "Figure 2: thermal time shifting on one hot server (power vs cooling load)",
		Headers: []string{"Hour", "Power (W)", "Cooling Load (W)", "Wax Melted (%)"},
	}
	for m := 0; m <= int(tr.Duration().Minutes()); m++ {
		u := tr.At(time.Duration(m) * time.Minute)
		power := 100 + u*32*9.0 // a hot-group-like server
		res, err := node.Step(power, time.Minute)
		if err != nil {
			return err
		}
		if m%120 == 0 {
			tb.AddRow(m/60, fmt.Sprintf("%.0f", power),
				fmt.Sprintf("%.0f", res.CoolingLoadW), fmt.Sprintf("%.0f", res.MeltFrac*100))
		}
	}
	return tb.Render(r.out)
}

func (r *reporter) fig6() error {
	caching, search, err := vmt.ColocationStudy()
	if err != nil {
		return err
	}
	ct := report.Table{
		Title:   "Figure 6: Data Caching latency with colocated Web Search",
		Headers: []string{"RPS/core", "6C mean(ms)", "6C p90", "2C+Search mean", "2C p90", "4C+Search mean", "4C p90"},
	}
	ms := func(s float64) string { return fmt.Sprintf("%.3f", s*1000) }
	for _, pt := range caching {
		ct.AddRow(fmt.Sprintf("%.0f", pt.RPSPerCore),
			ms(pt.Lat["6C"].MeanS), ms(pt.Lat["6C"].P90S),
			ms(pt.Lat["2C+Search"].MeanS), ms(pt.Lat["2C+Search"].P90S),
			ms(pt.Lat["4C+Search"].MeanS), ms(pt.Lat["4C+Search"].P90S))
	}
	if err := ct.Render(r.out); err != nil {
		return err
	}
	st := report.Table{
		Title:   "Figure 6: Web Search latency with colocated Data Caching",
		Headers: []string{"Clients/core", "6C mean(s)", "6C p90", "2C+Caching mean", "2C p90", "4C+Caching mean", "4C p90"},
	}
	sec := func(s float64) string { return fmt.Sprintf("%.3f", s) }
	for _, pt := range search {
		st.AddRow(fmt.Sprintf("%.1f", pt.ClientsPerCore),
			sec(pt.Lat["6C"].MeanS), sec(pt.Lat["6C"].P90S),
			sec(pt.Lat["2C+Caching"].MeanS), sec(pt.Lat["2C+Caching"].P90S),
			sec(pt.Lat["4C+Caching"].MeanS), sec(pt.Lat["4C+Caching"].P90S))
	}
	return st.Render(r.out)
}

func (r *reporter) fig7() error {
	six, three, err := vmt.ReliabilityStudy(r.sweepServers, 22)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   "Figure 7: cumulative failure, round robin vs VMT-WA (20%/month rotation)",
		Headers: []string{"Month", "Round Robin (%)", "VMT (%)"},
	}
	for m := 0; m <= three.Months; m += 3 {
		tb.AddRow(m, fmt.Sprintf("%.2f", three.RR[m]*100), fmt.Sprintf("%.2f", three.VMT[m]*100))
	}
	if err := tb.Render(r.out); err != nil {
		return err
	}
	fmt.Fprintf(r.out, "6-month delta: %+.2f points; 3-year delta: %+.2f points (paper: +0.4..0.6)\n",
		six.DeltaPct, three.DeltaPct)
	return nil
}

func (r *reporter) fig8() error {
	tr, err := trace.Generate(trace.PaperTwoDay(), time.Minute)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   "Figure 8: normalized two-day datacenter load",
		Headers: []string{"Hour", "Load (%)"},
	}
	for h := 0; h <= 48; h += 2 {
		tb.AddRow(h, fmt.Sprintf("%.1f", tr.At(time.Duration(h)*time.Hour)*100))
	}
	if err := tb.Render(r.out); err != nil {
		return err
	}
	peak, at := tr.Peak()
	fmt.Fprintf(r.out, "peak %.1f%% at %.1f h (paper: ≈95%% near hour 46)\n", peak*100, at.Hours())
	return nil
}

func (r *reporter) heatmapFig(name string, policy vmt.Policy, gv float64) error {
	study, err := vmt.RunHeatmapStudy(100, policy, gv)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("%s: cluster air temperatures using %s", name, policy)
	if gv > 0 {
		title += fmt.Sprintf(" (GV=%g)", gv)
	}
	air := report.Heatmap{
		Title: title,
		Grid:  report.FlipRows(report.Transpose(study.AirTempGrid)),
		Lo:    10, Hi: 50,
		XLabel: "time (48h)", YLabel: "server id (0 at bottom)",
	}
	if err := air.Render(r.out); err != nil {
		return err
	}
	melt := report.Heatmap{
		Title: fmt.Sprintf("%s: wax melted", name),
		Grid:  report.FlipRows(report.Transpose(study.MeltFracGrid)),
		Lo:    0, Hi: 1,
		XLabel: "time (48h)", YLabel: "server id (0 at bottom)",
	}
	if err := melt.Render(r.out); err != nil {
		return err
	}
	if err := r.writeSVG(name+"-air", report.SVGHeatmap{
		Title: title,
		Grid:  report.FlipRows(report.Transpose(study.AirTempGrid)),
		Lo:    10, Hi: 50,
	}.Render); err != nil {
		return err
	}
	return r.writeSVG(name+"-melt", report.SVGHeatmap{
		Title: fmt.Sprintf("%s: wax melted", name),
		Grid:  report.FlipRows(report.Transpose(study.MeltFracGrid)),
		Lo:    0, Hi: 1,
	}.Render)
}

func (r *reporter) table2() error {
	rows, err := vmt.GVMapping(r.sweepServers, []float64{20, 21, 22, 23, 24, 25, 26, 28, 30})
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   "Table II: experimentally derived GV → virtual melting temperature mapping",
		Headers: []string{"GV", "VMT (°C)", "ΔPMT (°C)"},
	}
	for _, row := range rows {
		if !row.Melts {
			tb.AddRow(fmt.Sprintf("%.2f", row.GV), "no melt", "—")
			continue
		}
		tb.AddRow(fmt.Sprintf("%.2f", row.GV),
			fmt.Sprintf("%.1f", row.VMTTempC), fmt.Sprintf("%+.1f", row.DeltaPMTC))
	}
	return tb.Render(r.out)
}

func (r *reporter) hotGroupTemps(name string, policy vmt.Policy, gvs []float64) error {
	var names []string
	var series []*stats.Series
	for _, gv := range gvs {
		res, err := vmt.Run(vmt.Scenario(r.servers, policy, gv))
		if err != nil {
			return err
		}
		names = append(names, fmt.Sprintf("GV=%g", gv))
		series = append(series, res.HotGroupTempC)
	}
	rr, err := vmt.Run(vmt.BaselineScenario(r.servers))
	if err != nil {
		return err
	}
	names = append(names, "RoundRobinAvg")
	series = append(series, rr.MeanAirTempC)
	tb := report.Table{
		Title:   fmt.Sprintf("%s: average hot group temperature using %s (°C, wax melts at 35.7)", name, policy),
		Headers: append([]string{"Hour"}, names...),
	}
	for h := 0; h <= 48; h += 3 {
		i := h * 60
		if i >= series[0].Len() {
			i = series[0].Len() - 1
		}
		row := []any{h}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.1f", s.Values[i]))
		}
		tb.AddRow(row...)
	}
	if err := tb.Render(r.out); err != nil {
		return err
	}
	if err := r.writeSVG(name, report.LineChart{
		Title:  fmt.Sprintf("%s: average hot group temperature (%s)", name, policy),
		YLabel: "°C",
		Names:  names,
		Series: series,
		HLines: map[string]float64{"wax melt 35.7 °C": 35.7},
	}.Render); err != nil {
		return err
	}
	return r.writeCSV(name, names, series)
}

func (r *reporter) coolingLoads(name string, policy vmt.Policy) error {
	study, err := vmt.RunCoolingLoadStudy(r.servers, policy, []float64{20, 22, 24})
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   fmt.Sprintf("%s: cluster cooling load using %s (kW)", name, policy),
		Headers: []string{"Hour", "TTS(RR)", "GV=20", "GV=22", "GV=24"},
	}
	for h := 0; h <= 48; h += 2 {
		i := h * 60
		if i >= study.Baseline.Len() {
			i = study.Baseline.Len() - 1
		}
		tb.AddRow(h,
			fmt.Sprintf("%.1f", study.Baseline.Values[i]/1000),
			fmt.Sprintf("%.1f", study.ByGV[20].Values[i]/1000),
			fmt.Sprintf("%.1f", study.ByGV[22].Values[i]/1000),
			fmt.Sprintf("%.1f", study.ByGV[24].Values[i]/1000))
	}
	if err := tb.Render(r.out); err != nil {
		return err
	}
	bars := report.Table{
		Title:   fmt.Sprintf("%s: peak cooling load reduction (%%)", name),
		Headers: []string{"Configuration", "Reduction (%)"},
	}
	keys := make([]string, 0, len(study.Reductions))
	for k := range study.Reductions { //vmtlint:allow maporder keys are sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bars.AddRow(k, fmt.Sprintf("%.1f", study.Reductions[k]))
	}
	if err := bars.Render(r.out); err != nil {
		return err
	}
	if err := r.writeSVG(name, report.LineChart{
		Title:  fmt.Sprintf("%s: cluster cooling load (%s)", name, policy),
		YLabel: "W",
		Names:  []string{"TTS(RR)", "GV=20", "GV=22", "GV=24"},
		Series: []*stats.Series{study.Baseline, study.ByGV[20], study.ByGV[22], study.ByGV[24]},
	}.Render); err != nil {
		return err
	}
	return r.writeCSV(name,
		[]string{"tts_rr", "gv20", "gv22", "gv24"},
		[]*stats.Series{study.Baseline, study.ByGV[20], study.ByGV[22], study.ByGV[24]})
}

func (r *reporter) fig17() error {
	pts, err := vmt.WaxThresholdSweep(r.sweepServers, 22,
		[]float64{0.85, 0.90, 0.95, 0.98, 0.99, 1.00})
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   "Figure 17: peak cooling load reduction vs wax threshold (VMT-WA, GV=22)",
		Headers: []string{"Wax Threshold", "Reduction (%)"},
	}
	for _, p := range pts {
		tb.AddRow(fmt.Sprintf("%.2f", p.WaxThreshold), fmt.Sprintf("%.1f", p.ReductionPct))
	}
	return tb.Render(r.out)
}

func (r *reporter) fig18() error {
	gvs := []float64{10, 12, 14, 16, 18, 20, 21, 22, 23, 24, 26, 28, 30}
	ta, err := vmt.GVSweep(r.sweepServers, vmt.PolicyVMTTA, gvs)
	if err != nil {
		return err
	}
	wa, err := vmt.GVSweep(r.sweepServers, vmt.PolicyVMTWA, gvs)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   "Figure 18: peak cooling load reduction vs GV (100 servers)",
		Headers: []string{"GV", "VMT-TA (%)", "VMT-WA (%)"},
	}
	for i := range ta {
		tb.AddRow(fmt.Sprintf("%g", ta[i].GV),
			fmt.Sprintf("%.1f", ta[i].ReductionPct), fmt.Sprintf("%.1f", wa[i].ReductionPct))
	}
	return tb.Render(r.out)
}

func (r *reporter) inletVariation(name string, policy vmt.Policy) error {
	gvs := []float64{16, 18, 20, 22, 24, 26, 28}
	pts, err := vmt.InletVariationStudy(r.sweepServers, policy, gvs, []float64{0, 1, 2}, r.runs)
	if err != nil {
		return err
	}
	byStdev := map[float64]map[float64]float64{} //vmtlint:allow floatkey keyed by study points copied verbatim from the stdev/gv lists
	for _, p := range pts {
		if byStdev[p.StdevC] == nil {
			byStdev[p.StdevC] = map[float64]float64{} //vmtlint:allow floatkey keyed by study points copied verbatim from the gv list
		}
		byStdev[p.StdevC][p.GV] = p.ReductionPct
	}
	tb := report.Table{
		Title:   fmt.Sprintf("%s: %s peak reduction with inlet temperature variation (avg of %d runs)", name, policy, r.runs),
		Headers: []string{"GV", "STDEV=0 (%)", "STDEV=1 (%)", "STDEV=2 (%)"},
	}
	for _, gv := range gvs {
		tb.AddRow(fmt.Sprintf("%g", gv),
			fmt.Sprintf("%.1f", byStdev[0][gv]),
			fmt.Sprintf("%.1f", byStdev[1][gv]),
			fmt.Sprintf("%.1f", byStdev[2][gv]))
	}
	return tb.Render(r.out)
}

func (r *reporter) tco() error {
	// Measure the actual best reduction at scale, then price it.
	red, err := vmt.PeakReductionPct(vmt.Scenario(r.servers, vmt.PolicyVMTTA, 22))
	if err != nil {
		return err
	}
	study, err := vmt.RunTCOStudy(red)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   fmt.Sprintf("Section V-E: TCO impact of the measured %.1f%% peak reduction (25 MW datacenter)", red),
		Headers: []string{"Quantity", "Measured", "Paper"},
	}
	tb.AddRow("Peak cooling load (MW)", fmt.Sprintf("%.1f", study.Best.CoolingLoadMW), "21.8")
	tb.AddRow("Smaller-cooling savings ($)", fmt.Sprintf("%.0f", study.Best.GrossCoolingSavingsUSD), "2,690,000")
	tb.AddRow("Extra servers (same cooling)", study.Best.ExtraServers, "7,339")
	tb.AddRow("Extra servers per cluster", study.Best.ExtraServersPerCluster, "146")
	tb.AddRow("Conservative 6% savings ($)", fmt.Sprintf("%.0f", study.Conservative.GrossCoolingSavingsUSD), "1,260,000")
	tb.AddRow("Conservative extra servers", study.Conservative.ExtraServers, "3,191")
	tb.AddRow("n-paraffin alternative cost ($)", fmt.Sprintf("%.0f", study.NParaffinUSD), "≈10,000,000")
	tb.AddRow("Commercial wax cost ($)", fmt.Sprintf("%.0f", study.CommercialUSD), "<0.5% of servers")
	return tb.Render(r.out)
}

func (r *reporter) extAdaptability() error {
	grid := vmt.DefaultGVGrid()
	ambient, err := vmt.AmbientSweep(r.sweepServers, []float64{18, 20, 22, 24, 26}, grid)
	if err != nil {
		return err
	}
	at := report.Table{
		Title:   "Extension: ambient adaptability (TTS fixed wax vs VMT retuned)",
		Headers: []string{"Inlet (°C)", "TTS (%)", "VMT (%)", "Best GV"},
	}
	for _, p := range ambient {
		at.AddRow(fmt.Sprintf("%g", p.Condition), fmt.Sprintf("%.1f", p.TTSReductionPct),
			fmt.Sprintf("%.1f", p.VMTReductionPct), fmt.Sprintf("%g", p.BestGV))
	}
	if err := at.Render(r.out); err != nil {
		return err
	}
	drift, err := vmt.DriftSweep(r.sweepServers, []float64{1.2, 1.35, 1.5, 1.65, 1.8}, grid)
	if err != nil {
		return err
	}
	dt := report.Table{
		Title:   "Extension: workload power drift (TTS fixed wax vs VMT retuned)",
		Headers: []string{"Power scale", "TTS (%)", "VMT (%)", "Best GV"},
	}
	for _, p := range drift {
		dt.AddRow(fmt.Sprintf("%g", p.Condition), fmt.Sprintf("%.1f", p.TTSReductionPct),
			fmt.Sprintf("%.1f", p.VMTReductionPct), fmt.Sprintf("%g", p.BestGV))
	}
	return dt.Render(r.out)
}

func (r *reporter) extOversubscription() error {
	tb := report.Table{
		Title:   "Extension: oversubscription validated in simulation (VMT-TA, GV=22)",
		Headers: []string{"Safety derate", "Extra servers", "Fits budget", "Headroom (%)"},
	}
	for _, safety := range []float64{0, 0.1, 0.25} {
		st, err := vmt.RunOversubscriptionStudy(2*r.sweepServers, vmt.PolicyVMTTA, 22, safety)
		if err != nil {
			return err
		}
		tb.AddRow(fmt.Sprintf("%.0f%%", safety*100), st.ExtraServers,
			st.FitsBudget, fmt.Sprintf("%.2f", st.HeadroomPct))
	}
	return tb.Render(r.out)
}

func (r *reporter) extAblation() error {
	pts, err := vmt.AblationStudy(r.sweepServers, 20)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   "Extension: design-choice ablations at GV=20 (where wax feedback matters)",
		Headers: []string{"Variant", "Peak reduction (%)"},
	}
	for _, p := range pts {
		tb.AddRow(p.Name, fmt.Sprintf("%.2f", p.ReductionPct))
	}
	return tb.Render(r.out)
}

func (r *reporter) extQoSImpact() error {
	tb := report.Table{
		Title:   "Extension: Web Search latency on a hot-group socket vs balanced placement (peak load)",
		Headers: []string{"GV", "RR mean (ms)", "Hot mean (ms)", "Delta (%)"},
	}
	for _, gv := range []float64{20, 22, 24} {
		li, err := vmt.RunLatencyImpactStudy(gv, 0.95)
		if err != nil {
			return err
		}
		tb.AddRow(fmt.Sprintf("%g", gv), fmt.Sprintf("%.0f", li.RR.MeanS*1000),
			fmt.Sprintf("%.0f", li.Hot.MeanS*1000), fmt.Sprintf("%+.1f", li.MeanDeltaPct))
	}
	return tb.Render(r.out)
}

func (r *reporter) extJobStream() error {
	tb := report.Table{
		Title:   "Extension: query-level load model (Poisson arrivals, sampled durations)",
		Headers: []string{"Policy", "Peak reduction (%)", "Arrivals", "Drops", "Drop rate (%)"},
	}
	rrCfg := vmt.BaselineScenario(r.sweepServers)
	rrCfg.JobStream = true
	base, err := vmt.Run(rrCfg)
	if err != nil {
		return err
	}
	tb.AddRow("round-robin", "0.0", base.TaskArrivals, base.TaskDrops,
		fmt.Sprintf("%.4f", float64(base.TaskDrops)/float64(base.TaskArrivals)*100))
	for _, p := range []vmt.Policy{vmt.PolicyVMTTA, vmt.PolicyVMTWA} {
		cfg := vmt.Scenario(r.sweepServers, p, 22)
		cfg.JobStream = true
		res, err := vmt.Run(cfg)
		if err != nil {
			return err
		}
		red := (base.PeakCoolingW() - res.PeakCoolingW()) / base.PeakCoolingW() * 100
		tb.AddRow(string(p), fmt.Sprintf("%.1f", red), res.TaskArrivals, res.TaskDrops,
			fmt.Sprintf("%.4f", float64(res.TaskDrops)/float64(res.TaskArrivals)*100))
	}
	return tb.Render(r.out)
}

func (r *reporter) extAdaptiveGV() error {
	week := []float64{0.75, 0.76, 0.74, 0.95, 0.94, 0.95}
	st, err := vmt.RunAdaptiveGVStudy(r.sweepServers, 50, week, []float64{16, 18, 20, 22, 24})
	if err != nil {
		return err
	}
	tb := report.Table{
		Title: fmt.Sprintf("Extension: day-ahead GV retuning on a regime-shift week (forecast MAE %.3f, static best GV=%g)",
			st.ForecastMAE, st.StaticGV),
		Headers: []string{"Day", "Peak util", "Chosen GV", "Adaptive (%)", "Static (%)"},
	}
	for d := range st.DayPeaks {
		tb.AddRow(d, fmt.Sprintf("%.2f", st.DayPeaks[d]), fmt.Sprintf("%g", st.ChosenGVs[d]),
			fmt.Sprintf("%.1f", st.AdaptiveDaily[d]), fmt.Sprintf("%.1f", st.StaticDaily[d]))
	}
	tb.AddRow("mean", "", "", fmt.Sprintf("%.2f", st.MeanAdaptivePct), fmt.Sprintf("%.2f", st.MeanStaticPct))
	return tb.Render(r.out)
}

func (r *reporter) extZones() error {
	tb := report.Table{
		Title:   "Extension: hot-group physical placement vs per-zone CRAC load (VMT-TA, GV=22)",
		Headers: []string{"Zones", "Striped peak/mean", "Clustered peak/mean", "CRAC oversize (%)"},
	}
	for _, z := range []int{4, 5, 10} {
		st, err := vmt.RunZonePlacementStudy(r.sweepServers, z, 22)
		if err != nil {
			return err
		}
		tb.AddRow(z, fmt.Sprintf("%.3f", st.StripedPeakToMean),
			fmt.Sprintf("%.3f", st.ClusteredPeakToMean), fmt.Sprintf("%.1f", st.CRACOversizePct))
	}
	return tb.Render(r.out)
}

func (r *reporter) table2Fusion() error {
	rows, err := vmt.GVMappingFusion(r.sweepServers,
		[]float64{2, 1, 0, -1, -2, -3, -4, -5, -6, -7},
		[]float64{16, 18, 20, 22, 24, 26, 28, 30})
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   "Table II (alternate derivation): fusion-scaled PMT sweep matched on peak stored wax energy",
		Headers: []string{"ΔPMT (°C)", "PMT' (°C)", "Matched GV", "TTS energy (MJ)", "VMT energy (MJ)"},
	}
	for _, row := range rows {
		tb.AddRow(fmt.Sprintf("%+.1f", row.DeltaPMTC), fmt.Sprintf("%.1f", row.PMTC),
			fmt.Sprintf("%g", row.GV),
			fmt.Sprintf("%.1f", row.TTSEnergyMJ), fmt.Sprintf("%.1f", row.VMTEnergyMJ))
	}
	return tb.Render(r.out)
}

func (r *reporter) extMaterial() error {
	grid := []float64{18, 20, 22, 24, 26}
	pmt, err := vmt.PMTSweep(r.sweepServers, []float64{34.7, 35.7, 37, 38.5, 40}, grid)
	if err != nil {
		return err
	}
	tb := report.Table{
		Title:   "Extension: wax melting-point purchasing cliff (VMT-TA, GV retuned per point)",
		Headers: []string{"PMT (°C)", "Reduction (%)", "Best GV"},
	}
	for _, p := range pmt {
		tb.AddRow(fmt.Sprintf("%g", p.Value), fmt.Sprintf("%.1f", p.ReductionPct), fmt.Sprintf("%g", p.BestGV))
	}
	if err := tb.Render(r.out); err != nil {
		return err
	}
	vol, err := vmt.VolumeSweep(r.sweepServers, []float64{1, 2, 4, 6, 8}, grid)
	if err != nil {
		return err
	}
	vb := report.Table{
		Title:   "Extension: wax volume per server (paper deploys the CFD-limited 4.0 L)",
		Headers: []string{"Volume (L)", "Reduction (%)", "Best GV"},
	}
	for _, p := range vol {
		vb.AddRow(fmt.Sprintf("%g", p.Value), fmt.Sprintf("%.1f", p.ReductionPct), fmt.Sprintf("%g", p.BestGV))
	}
	return vb.Render(r.out)
}
