package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"vmt/internal/lint"
)

// writeModule lays out a throwaway module on disk so the tests can
// exercise the real loader end to end.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestRunCleanTree is the acceptance criterion in-process: the repo's
// own tree lints clean under -strict, exit 0, no output.
func TestRunCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run(cwd, []string{"./..."}, true, false, "", false, &out, &errOut); code != 0 {
		t.Fatalf("run(./...) = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean tree printed diagnostics:\n%s", out.String())
	}
}

// TestRunReportsViolation reintroduces a violation in a scratch module
// and checks the exit code and diagnostic format.
func TestRunReportsViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module vmt\n\ngo 1.24\n",
		"internal/sim/clock.go": `package sim

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	var out, errOut bytes.Buffer
	if code := run(dir, []string{"./..."}, false, false, "", false, &out, &errOut); code != 1 {
		t.Fatalf("run = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	// Diagnostic contract: file:line: [analyzer] message, path relative
	// to the working directory.
	re := regexp.MustCompile(`(?m)^internal[/\\]sim[/\\]clock\.go:5: \[detrand\] `)
	if !re.MatchString(out.String()) {
		t.Errorf("output does not match %q:\n%s", re, out.String())
	}
	if strings.Contains(out.String(), dir) {
		t.Errorf("diagnostic paths should be relative to the working directory:\n%s", out.String())
	}
}

// TestRunSuppressedViolation checks the allow comment flips the same
// tree back to exit 0.
func TestRunSuppressedViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module vmt\n\ngo 1.24\n",
		"internal/sim/clock.go": `package sim

import "time" //vmtlint:allow detrand scratch module: exercising suppression

//vmtlint:allow detrand scratch module: exercising suppression
func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	var out, errOut bytes.Buffer
	if code := run(dir, []string{"./..."}, false, false, "", false, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
}

// TestRunStrictUnusedAllow: a stale allow is invisible to the default
// run but flips -strict to exit 1 with the allow's own position.
func TestRunStrictUnusedAllow(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module vmt\n\ngo 1.24\n",
		"internal/sim/clean.go": `package sim

//vmtlint:allow detrand the code this excused is long gone
func Stamp() int64 { return 42 }
`,
	})
	var out, errOut bytes.Buffer
	if code := run(dir, []string{"./..."}, false, false, "", false, &out, &errOut); code != 0 {
		t.Fatalf("default run = %d, want 0 (stale allows only matter under -strict)\nstdout:\n%s", code, out.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run(dir, []string{"./..."}, true, false, "", false, &out, &errOut); code != 1 {
		t.Fatalf("strict run = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	re := regexp.MustCompile(`(?m)^internal[/\\]sim[/\\]clean\.go:3: \[allow\] unused vmtlint:allow detrand`)
	if !re.MatchString(out.String()) {
		t.Errorf("output does not match %q:\n%s", re, out.String())
	}
}

func TestRunBadPattern(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module vmt\n\ngo 1.24\n",
		"main.go": "package vmt\n",
	})
	var out, errOut bytes.Buffer
	if code := run(dir, []string{"./nonexistent/..."}, false, false, "", false, &out, &errOut); code != 2 {
		t.Fatalf("run(bad pattern) = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "matched no packages") {
		t.Errorf("stderr should explain the unmatched pattern, got:\n%s", errOut.String())
	}
}

// TestRunCacheWarm: with -cache, a second CLI run over an unchanged
// module answers every package from disk — zero misses, zero packages
// type-checked — while printing byte-identical diagnostics with the
// same exit code.
func TestRunCacheWarm(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module vmt\n\ngo 1.24\n",
		"internal/sim/clock.go": `package sim

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
		"internal/pcm/ok.go": "package pcm\n\nfunc Answer() int { return 42 }\n",
	})
	cacheDir := filepath.Join(t.TempDir(), "lintcache")
	var coldOut, coldErr bytes.Buffer
	if code := run(dir, []string{"./..."}, false, false, cacheDir, true, &coldOut, &coldErr); code != 1 {
		t.Fatalf("cold run = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, coldOut.String(), coldErr.String())
	}
	if !strings.Contains(coldErr.String(), "cache 0 hits, 2 misses") {
		t.Errorf("cold stats missing, stderr:\n%s", coldErr.String())
	}
	var warmOut, warmErr bytes.Buffer
	if code := run(dir, []string{"./..."}, false, false, cacheDir, true, &warmOut, &warmErr); code != 1 {
		t.Fatalf("warm run = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, warmOut.String(), warmErr.String())
	}
	if !strings.Contains(warmErr.String(), "cache 2 hits, 0 misses, 0 packages type-checked") {
		t.Errorf("warm run should skip all type-checking, stderr:\n%s", warmErr.String())
	}
	if warmOut.String() != coldOut.String() {
		t.Errorf("warm diagnostics differ from cold:\ncold:\n%s\nwarm:\n%s", coldOut.String(), warmOut.String())
	}
}

func TestRunOutsideModule(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	if code := run(dir, nil, false, false, "", false, &out, &errOut); code != 2 {
		t.Fatalf("run outside a module = %d, want 2\nstderr:\n%s", code, errOut.String())
	}
}

// TestRunJSON pins the CLI side of the NDJSON contract: one object per
// line, paths relative to the working directory, suppressed findings
// kept with allowed:true, and the exit code still driven by live
// diagnostics only.
func TestRunJSON(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module vmt\n\ngo 1.24\n",
		"internal/sim/clock.go": `package sim

import "time"

func Stamp() int64 { return time.Now().UnixNano() }

func Waived() int64 { return time.Now().UnixNano() } //vmtlint:allow detrand scratch module: exercising json output
`,
	})
	var out, errOut bytes.Buffer
	if code := run(dir, []string{"./..."}, false, true, "", false, &out, &errOut); code != 1 {
		t.Fatalf("run = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	diags, err := lint.ReadJSON(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("output is not valid NDJSON: %v\n%s", err, out.String())
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (one live, one allowed):\n%s", len(diags), out.String())
	}
	var live, allowed int
	for _, d := range diags {
		if d.Analyzer != "detrand" {
			t.Errorf("analyzer = %q, want detrand", d.Analyzer)
		}
		if filepath.IsAbs(d.Position.Filename) || strings.Contains(d.Position.Filename, dir) {
			t.Errorf("path should be relative to the working directory: %q", d.Position.Filename)
		}
		if d.Allowed {
			allowed++
		} else {
			live++
		}
	}
	if live != 1 || allowed != 1 {
		t.Errorf("got %d live + %d allowed, want 1 + 1:\n%s", live, allowed, out.String())
	}
}

// TestRunJSONCleanExitZero: a tree whose only finding is suppressed
// still streams that finding but exits 0.
func TestRunJSONCleanExitZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module vmt\n\ngo 1.24\n",
		"internal/sim/clock.go": `package sim

import "time"

func Waived() int64 { return time.Now().UnixNano() } //vmtlint:allow detrand scratch module: waiver-only tree
`,
	})
	var out, errOut bytes.Buffer
	if code := run(dir, []string{"./..."}, false, true, "", false, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	diags, err := lint.ReadJSON(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !diags[0].Allowed {
		t.Fatalf("want exactly one allowed finding in the stream, got: %+v", diags)
	}
}
