// Command vmtlint runs the repo's domain static analyzers — the
// determinism and cache-soundness invariants the simulator's results
// rest on — over the module's packages. Standard library only: the
// driver is internal/lint, built on go/parser, go/types, and
// go/importer.
//
// Usage:
//
//	vmtlint [-list] [-strict] [pattern ...]
//
// Patterns are package directories relative to the working directory:
// "./..." (or no arguments) lints every package in the module,
// "./internal/sim" one package, "./internal/..." a subtree. Import
// paths ("vmt/internal/sim") work too.
//
// Diagnostics print as "file:line: [analyzer] message". Exit status is
// 0 for a clean tree, 1 if any unsuppressed diagnostic was reported,
// and 2 for usage or load errors. Suppress a finding with a trailing
// or preceding comment:
//
//	//vmtlint:allow <analyzer> <reason>
//
// The reason is mandatory; malformed suppressions are diagnostics
// themselves. With -strict, an allow that suppresses nothing — stale
// after the code it excused drifted away — is also a diagnostic, so
// the inventory of sanctioned exceptions can never quietly outgrow
// the code.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"vmt/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	strict := flag.Bool("strict", false, "also report //vmtlint:allow directives that suppress nothing")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vmtlint [-list] [-strict] [pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmtlint:", err)
		os.Exit(2)
	}
	os.Exit(run(cwd, flag.Args(), *strict, os.Stdout, os.Stderr))
}

// run is the testable driver body: lint the packages of the module
// containing dir that match the patterns, print diagnostics to out,
// and return the process exit code.
func run(dir string, patterns []string, strict bool, out, errOut io.Writer) int {
	root, err := lint.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(errOut, "vmtlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(errOut, "vmtlint:", err)
		return 2
	}
	paths, err := selectPackages(loader, dir, patterns)
	if err != nil {
		fmt.Fprintln(errOut, "vmtlint:", err)
		return 2
	}
	var pkgs []*lint.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fmt.Fprintln(errOut, "vmtlint:", err)
			return 2
		}
		// Lint runs on code that already builds; type errors mean the
		// loader's import environment is broken, and linting
		// half-typed code would silently miss findings.
		if len(pkg.TypeErrors) > 0 {
			fmt.Fprintf(errOut, "vmtlint: type-checking %s failed:\n", p)
			for i, te := range pkg.TypeErrors {
				if i == 5 {
					fmt.Fprintf(errOut, "\t... and %d more\n", len(pkg.TypeErrors)-i)
					break
				}
				fmt.Fprintf(errOut, "\t%v\n", te)
			}
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	runner := lint.Run
	if strict {
		runner = lint.RunStrict
	}
	diags := runner(pkgs, lint.Analyzers)
	for _, d := range diags {
		file := d.Position.Filename
		if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		fmt.Fprintf(out, "%s:%d: [%s] %s\n", file, d.Position.Line, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectPackages resolves CLI patterns to module import paths. An
// empty pattern list or "./..." selects the whole module.
func selectPackages(loader *lint.Loader, dir string, patterns []string) ([]string, error) {
	all := loader.ModulePackages()
	if len(patterns) == 0 {
		return all, nil
	}
	seen := map[string]bool{}
	var selected []string
	for _, pat := range patterns {
		matched := false
		for _, p := range all {
			if !matchPattern(loader, dir, pat, p) {
				continue
			}
			matched = true
			if !seen[p] {
				seen[p] = true
				selected = append(selected, p)
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return selected, nil
}

// matchPattern reports whether the import path pkg matches pat. pat is
// either an import-path pattern ("vmt/internal/...") or a directory
// pattern relative to dir ("./...", "./internal/sim").
func matchPattern(loader *lint.Loader, dir, pat, pkg string) bool {
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		if pathMatches(loader, dir, rest, pkg) {
			return true
		}
		// "./..." also matches subpackages of the named directory.
		prefix := resolvePattern(loader, dir, rest)
		return prefix != "" && strings.HasPrefix(pkg, prefix+"/")
	}
	return pathMatches(loader, dir, pat, pkg)
}

func pathMatches(loader *lint.Loader, dir, pat, pkg string) bool {
	return resolvePattern(loader, dir, pat) == pkg
}

// resolvePattern turns a pattern stem into an import path: import
// paths pass through, directory forms resolve against the module root.
func resolvePattern(loader *lint.Loader, dir, pat string) string {
	if pat == "" || pat == "." {
		pat = "./."
	}
	if !strings.HasPrefix(pat, "./") && !strings.HasPrefix(pat, "../") && !filepath.IsAbs(pat) {
		return pat // already an import path
	}
	abs := pat
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(dir, pat)
	}
	rel, err := filepath.Rel(loader.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return ""
	}
	if rel == "." {
		return loader.ModulePath
	}
	return loader.ModulePath + "/" + filepath.ToSlash(rel)
}
