// Command vmtlint runs the repo's domain static analyzers — the
// determinism and cache-soundness invariants the simulator's results
// rest on — over the module's packages. Standard library only: the
// driver is internal/lint, built on go/parser, go/types, and
// go/importer.
//
// Usage:
//
//	vmtlint [-list] [-strict] [-json] [-cache dir] [-cachestats] [pattern ...]
//
// Patterns are package directories relative to the working directory:
// "./..." (or no arguments) lints every package in the module,
// "./internal/sim" one package, "./internal/..." a subtree. Import
// paths ("vmt/internal/sim") work too.
//
// With -cache, per-package diagnostics are cached on disk keyed by a
// content hash over the package's sources, its module-local import
// closure, the analyzer set, and the toolchain — the same discipline
// as the simulator's run cache. A warm run answers every package from
// disk without parsing or type-checking anything, retiring the
// several-second module reload that dominated each invocation.
// -cachestats reports hits/misses/type-checks to stderr.
//
// Diagnostics print as "file:line: [analyzer] message". With -json
// they print as NDJSON instead — one
// {"file","line","col","analyzer","message","allowed"} object per line
// — and include suppressed findings with "allowed": true, so CI can
// track the waiver inventory. Exit status is 0 for a clean tree, 1 if
// any unsuppressed diagnostic was reported (in either output mode),
// and 2 for usage or load errors. Suppress a finding with a trailing
// or preceding comment:
//
//	//vmtlint:allow <analyzer> <reason>
//
// The reason is mandatory; malformed suppressions are diagnostics
// themselves. With -strict, an allow that suppresses nothing — stale
// after the code it excused drifted away — is also a diagnostic, so
// the inventory of sanctioned exceptions can never quietly outgrow
// the code.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"vmt/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	strict := flag.Bool("strict", false, "also report //vmtlint:allow directives that suppress nothing")
	jsonOut := flag.Bool("json", false, "print diagnostics as NDJSON (includes allowed findings)")
	cacheDir := flag.String("cache", "", "cache per-package diagnostics in `dir`, keyed by content hash")
	cacheStats := flag.Bool("cachestats", false, "report cache hits/misses and type-check count to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vmtlint [-list] [-strict] [-json] [-cache dir] [-cachestats] [pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmtlint:", err)
		os.Exit(2)
	}
	os.Exit(run(cwd, flag.Args(), *strict, *jsonOut, *cacheDir, *cacheStats, os.Stdout, os.Stderr))
}

// run is the testable driver body: lint the packages of the module
// containing dir that match the patterns, print diagnostics to out,
// and return the process exit code.
func run(dir string, patterns []string, strict, jsonOut bool, cacheDir string, cacheStats bool, out, errOut io.Writer) int {
	root, err := lint.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(errOut, "vmtlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(errOut, "vmtlint:", err)
		return 2
	}
	paths, err := selectPackages(loader, dir, patterns)
	if err != nil {
		fmt.Fprintln(errOut, "vmtlint:", err)
		return 2
	}
	var cache *lint.Cache
	if cacheDir != "" {
		if cache, err = lint.OpenCache(cacheDir); err != nil {
			fmt.Fprintln(errOut, "vmtlint:", err)
			return 2
		}
	}
	diags, err := lint.RunCached(loader, cache, paths, lint.Analyzers, strict)
	if err != nil {
		// Lint runs on code that already builds; type errors mean the
		// loader's import environment is broken, and linting
		// half-typed code would silently miss findings.
		var terr *lint.TypeCheckError
		if errors.As(err, &terr) {
			fmt.Fprintf(errOut, "vmtlint: type-checking %s failed:\n", terr.Path)
			for i, te := range terr.Errs {
				if i == 5 {
					fmt.Fprintf(errOut, "\t... and %d more\n", len(terr.Errs)-i)
					break
				}
				fmt.Fprintf(errOut, "\t%v\n", te)
			}
			return 2
		}
		fmt.Fprintln(errOut, "vmtlint:", err)
		return 2
	}
	if cache != nil && cacheStats {
		fmt.Fprintf(errOut, "vmtlint: cache %d hits, %d misses, %d packages type-checked\n",
			cache.Hits(), cache.Misses(), loader.Checked())
	}
	// RunCached returns suppressed findings too (Allowed=true): the
	// JSON stream keeps them for CI, the text view and the exit code
	// see only live ones.
	live := lint.Live(diags)
	if jsonOut {
		rel := make([]lint.Diagnostic, len(diags))
		for i, d := range diags {
			rel[i] = d
			if r, err := filepath.Rel(dir, d.Position.Filename); err == nil && !strings.HasPrefix(r, "..") {
				rel[i].Position.Filename = r
			}
		}
		if err := lint.WriteJSON(out, rel); err != nil {
			fmt.Fprintln(errOut, "vmtlint:", err)
			return 2
		}
	} else {
		for _, d := range live {
			file := d.Position.Filename
			if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
			fmt.Fprintf(out, "%s:%d: [%s] %s\n", file, d.Position.Line, d.Analyzer, d.Message)
		}
	}
	if len(live) > 0 {
		return 1
	}
	return 0
}

// selectPackages resolves CLI patterns to module import paths. An
// empty pattern list or "./..." selects the whole module.
func selectPackages(loader *lint.Loader, dir string, patterns []string) ([]string, error) {
	all := loader.ModulePackages()
	if len(patterns) == 0 {
		return all, nil
	}
	seen := map[string]bool{}
	var selected []string
	for _, pat := range patterns {
		matched := false
		for _, p := range all {
			if !matchPattern(loader, dir, pat, p) {
				continue
			}
			matched = true
			if !seen[p] {
				seen[p] = true
				selected = append(selected, p)
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return selected, nil
}

// matchPattern reports whether the import path pkg matches pat. pat is
// either an import-path pattern ("vmt/internal/...") or a directory
// pattern relative to dir ("./...", "./internal/sim").
func matchPattern(loader *lint.Loader, dir, pat, pkg string) bool {
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		if pathMatches(loader, dir, rest, pkg) {
			return true
		}
		// "./..." also matches subpackages of the named directory.
		prefix := resolvePattern(loader, dir, rest)
		return prefix != "" && strings.HasPrefix(pkg, prefix+"/")
	}
	return pathMatches(loader, dir, pat, pkg)
}

func pathMatches(loader *lint.Loader, dir, pat, pkg string) bool {
	return resolvePattern(loader, dir, pat) == pkg
}

// resolvePattern turns a pattern stem into an import path: import
// paths pass through, directory forms resolve against the module root.
func resolvePattern(loader *lint.Loader, dir, pat string) string {
	if pat == "" || pat == "." {
		pat = "./."
	}
	if !strings.HasPrefix(pat, "./") && !strings.HasPrefix(pat, "../") && !filepath.IsAbs(pat) {
		return pat // already an import path
	}
	abs := pat
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(dir, pat)
	}
	rel, err := filepath.Rel(loader.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return ""
	}
	if rel == "." {
		return loader.ModulePath
	}
	return loader.ModulePath + "/" + filepath.ToSlash(rel)
}
