// Command vmtsim runs one cluster simulation and prints a summary plus
// an optional cooling-load time series.
//
// Usage:
//
//	vmtsim -policy vmt-ta -gv 22 -servers 1000
//	vmtsim -policy round-robin -servers 100 -series
//	vmtsim -policy vmt-wa -gv 20 -threshold 0.95 -inlet-stdev 2 -seed 3
//	vmtsim -servers 2048 -physics-workers 8
//	vmtsim -source '{"kind":"bursty","level":0.3,"burst_util":0.8,"burst_prob":0.2,"epoch_min":15}' -horizon-min 120
//
// Observability (see internal/cliobs):
//
//	vmtsim -trace out.json          # Chrome trace for Perfetto / chrome://tracing
//	vmtsim -metrics metrics.txt     # dump counters/gauges/histograms on exit
//	vmtsim -cpuprofile cpu.pprof -debug-addr localhost:8080
//	vmtsim -stream windows.ndjson   # windowed min/max/mean/p99 NDJSON stream
//	vmtsim -fleet-log fleet.ndjson  # per-tick fleet ground truth (vmtdiff input)
//	vmtsim -profile-bands -metrics metrics.txt   # per-band wall/alloc profiling
//
// With -debug-addr, /metrics serves Prometheus text exposition and
// /fleet the latest fleet snapshot as JSON, both safe to scrape
// mid-run.
//
// Serve mode hands the simulation clock to an external controller:
//
//	vmtsim -serve -debug-addr localhost:8080 \
//	    -source '{"kind":"poisson","level":0.5,"events":30}'
//
// The process opens a resumable session and blocks; time advances only
// when a client POSTs /step?n=N. GET /observe returns the current fleet
// observation as JSON and POST /place?workload=W&server=I enqueues a
// placement directive — the step/observe seam over HTTP. The session
// ends when a step reaches the horizon (finite configs) or on SIGINT,
// after which the usual summary is printed from whatever prefix ran.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"vmt"
	"vmt/internal/cliobs"
	"vmt/internal/report"
	"vmt/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "vmtsim: %v\n", err)
		os.Exit(1)
	}
}

func run() (err error) {
	fs := flag.NewFlagSet("vmtsim", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	obs := cliobs.RegisterFlags(fs)
	cfg, opts, err := buildConfig(fs, os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		// Reject bad policies/parameters before any simulation (or
		// profiling) starts, with usage for the flag that caused it.
		fmt.Fprintf(os.Stderr, "vmtsim: %v\n\n", err)
		fs.Usage()
		os.Exit(2)
	}
	if opts.Serve && obs.DebugAddr == "" {
		fmt.Fprintf(os.Stderr, "vmtsim: -serve requires -debug-addr\n\n")
		fs.Usage()
		os.Exit(2)
	}

	if err := obs.Start(); err != nil {
		return err
	}
	defer func() {
		// A failed trace/metrics/profile flush must fail the command.
		if cerr := obs.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("observability: %w", cerr)
		}
	}()

	var res *vmt.Result
	if opts.Serve {
		res, err = serveSession(cfg, obs)
	} else {
		res, err = vmt.Run(cfg)
	}
	if err != nil {
		return err
	}
	return printSummary(cfg, opts, res)
}

// serveSession opens a resumable session, exposes it on the cliobs
// debug server, and blocks until a /step completes the horizon or the
// process is interrupted. The partial (or full) result is returned for
// the usual summary.
func serveSession(cfg vmt.Config, obs *cliobs.Observability) (*vmt.Result, error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	s, err := vmt.OpenCtx(ctx, cfg)
	if err != nil {
		return nil, err
	}
	ss := cliobs.ServeSession(s)
	fmt.Fprintf(os.Stderr, "vmtsim: serving session on %s (POST /step, GET /observe, POST /place)\n", obs.Addr())
	select {
	case <-ss.Done():
		fmt.Fprintln(os.Stderr, "vmtsim: session reached its horizon")
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "vmtsim: interrupted; closing session")
	}
	res, err := s.Close()
	// An interrupt is the expected way to end an open-ended session:
	// keep the partial result and summarize what ran.
	if errors.Is(err, context.Canceled) && res != nil {
		err = nil
	}
	return res, err
}

func printSummary(cfg vmt.Config, opts simOptions, res *vmt.Result) error {
	if res.CoolingLoadW.Len() == 0 {
		fmt.Fprintln(os.Stderr, "vmtsim: no ticks completed; nothing to summarize")
		return nil
	}
	sum, err := res.CoolingSummary()
	if err != nil {
		return err
	}

	tb := report.Table{
		Title: fmt.Sprintf("%s on %d servers over %.1f simulated hours", cfg.Policy, cfg.Servers,
			res.CoolingLoadW.TimeAt(res.CoolingLoadW.Len()).Hours()),
		Headers: []string{"Metric", "Value"},
	}
	tb.AddRow("Peak cooling load", fmt.Sprintf("%.1f kW at %.1f h", sum.PeakW/1000, sum.PeakAt.Hours()))
	tb.AddRow("Mean cooling load", fmt.Sprintf("%.1f kW", sum.MeanW/1000))
	tb.AddRow("Trough cooling load", fmt.Sprintf("%.1f kW", sum.TroughW/1000))
	tb.AddRow("Load flatness (trough/peak)", fmt.Sprintf("%.1f%%", sum.FlatnessPct))
	peakMelt, at, _ := res.MeanMeltFrac.Peak()
	tb.AddRow("Peak fleet wax melted", fmt.Sprintf("%.1f%% at %.1f h", peakMelt*100, at.Hours()))
	peakTemp, _, _ := res.MeanAirTempC.Peak()
	tb.AddRow("Peak mean air temperature", fmt.Sprintf("%.2f °C", peakTemp))
	if res.HotGroupSize != nil {
		maxHot, _, _ := res.HotGroupSize.Peak()
		tb.AddRow("Hot group size (initial→max)",
			fmt.Sprintf("%.0f → %.0f", res.HotGroupSize.Values[0], maxHot))
	}
	if res.TaskArrivals > 0 {
		tb.AddRow("Task arrivals / drops",
			fmt.Sprintf("%d / %d", res.TaskArrivals, res.TaskDrops))
	}
	if opts.Baseline && !opts.Serve && cfg.Policy != vmt.PolicyRoundRobin {
		red, err := vmt.PeakReductionPct(cfg)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		tb.AddRow("Peak reduction vs round robin", fmt.Sprintf("%.2f%%", red))
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}

	if opts.Series {
		hourly := res.CoolingLoadW.Downsample(60)
		if err := report.SeriesCSV(os.Stdout, []string{"cooling_kw"},
			[]*stats.Series{scaled(hourly, 1e-3)}); err != nil {
			return err
		}
	}
	return nil
}

// scaled returns a copy of s with values multiplied by k.
func scaled(s *stats.Series, k float64) *stats.Series {
	out := &stats.Series{Start: s.Start, Step: s.Step, Values: make([]float64, s.Len())}
	for i, v := range s.Values {
		out.Values[i] = v * k
	}
	return out
}
