package main

import (
	"flag"
	"io"
	"strings"
	"testing"
)

// FuzzBuildConfig drives the CLI's flag parsing and configuration
// validation with arbitrary argv strings. The contract buildConfig
// gives main: never panic, and any (cfg, _, nil) return is a
// Validate-clean configuration the simulator will accept.
func FuzzBuildConfig(f *testing.F) {
	f.Add("")
	f.Add("-policy vmt-ta -gv 22 -servers 100")
	f.Add("-policy vmt-wa -gv 20 -threshold 0.95 -inlet-stdev 2 -seed 3")
	f.Add("-policy round-robin -servers 1 -series -baseline=false")
	f.Add("-servers 2048 -physics-workers 8")
	f.Add("-policy nonsense")
	f.Add("-servers -5")
	f.Add("-gv NaN")
	f.Add("-threshold 2")
	f.Add("-physics-workers -1")
	f.Add("-servers 9999999999999999999999")
	f.Add("-unknown-flag x")
	f.Add("--")
	f.Add("-h")
	f.Add(`-source {"kind":"poisson","level":0.5,"events":30} -horizon-min 60`)
	f.Add(`-source {"kind":"bursty","level":0.3,"burst_util":0.8,"burst_prob":0.2,"epoch_min":15} -serve`)
	f.Add(`-source {"kind":"nope"}`)
	f.Add(`-source notjson`)
	f.Add("-horizon-min -1")
	f.Add(`-faults {"crashes":[{"server":3,"at_min":120,"repair_after_min":60}]}`)
	f.Add(`-faults {"topology":{"servers_per_rack":6,"racks_per_row":5,"rows_per_zone":1},"domains":[{"kind":"rack","index":1,"at_min":360,"repair_after_min":180}]}`)
	f.Add(`-faults {"byzantine":[{"server":0,"kind":"melt","start_min":60,"bias":0.5}]}`)
	f.Add(`-faults {"domains":[{"kind":"rack","index":0,"at_min":5}]}`)
	f.Add(`-faults {"crashes":[{"server":500,"at_min":1}]} -servers 10`)
	f.Add(`-faults notjson`)

	f.Fuzz(func(t *testing.T, argv string) {
		args := strings.Fields(argv)
		fs := flag.NewFlagSet("vmtsim", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		cfg, _, err := buildConfig(fs, args)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("buildConfig accepted %q but Validate rejects: %v", argv, verr)
		}
	})
}
