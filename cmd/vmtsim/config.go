package main

import (
	"flag"
	"fmt"

	"vmt"
)

// simOptions carries the presentation knobs that ride alongside the
// simulation configuration on the command line.
type simOptions struct {
	// Series prints the hourly cooling-load series after the summary.
	Series bool
	// Baseline also runs a round-robin baseline for the reduction row.
	Baseline bool
}

// registerConfigFlags declares every simulation flag on fs and returns
// a builder that assembles the validated Config after fs.Parse. Keeping
// declaration and assembly together (and separate from main's
// observability wiring) gives the fuzz harness the exact surface the
// CLI exposes: any argv must either produce a Validate-clean Config or
// return an error — never panic.
func registerConfigFlags(fs *flag.FlagSet) func() (vmt.Config, simOptions, error) {
	policy := fs.String("policy", "vmt-ta", "placement policy: round-robin, coolest-first, vmt-ta, vmt-wa")
	gv := fs.Float64("gv", 22, "grouping value for the VMT policies")
	servers := fs.Int("servers", 100, "cluster size")
	threshold := fs.Float64("threshold", 0.98, "VMT-WA wax threshold")
	inletStdev := fs.Float64("inlet-stdev", 0, "per-server inlet temperature stdev (°C)")
	seed := fs.Uint64("seed", 0, "random seed for inlet variation")
	series := fs.Bool("series", false, "print the hourly cooling-load series")
	jobStream := fs.Bool("jobstream", false, "use the query-level load model (Poisson task arrivals)")
	baseline := fs.Bool("baseline", true, "also run a round-robin baseline and report the peak reduction")
	physicsWorkers := fs.Int("physics-workers", 0,
		"per-tick physics goroutines (0 = auto: serial for small clusters, bounded by GOMAXPROCS otherwise); results are identical for any value")
	return func() (vmt.Config, simOptions, error) {
		cfg := vmt.Config{
			Servers:        *servers,
			Policy:         vmt.Policy(*policy),
			GV:             *gv,
			WaxThreshold:   *threshold,
			InletStdevC:    *inletStdev,
			Seed:           *seed,
			JobStream:      *jobStream,
			PhysicsWorkers: *physicsWorkers,
		}
		if err := cfg.Validate(); err != nil {
			return vmt.Config{}, simOptions{}, fmt.Errorf("invalid configuration: %w", err)
		}
		return cfg, simOptions{Series: *series, Baseline: *baseline}, nil
	}
}

// buildConfig parses args (argv without the program name) into a
// validated Config — the single entry point main and the fuzz harness
// share.
func buildConfig(fs *flag.FlagSet, args []string) (vmt.Config, simOptions, error) {
	build := registerConfigFlags(fs)
	if err := fs.Parse(args); err != nil {
		return vmt.Config{}, simOptions{}, err
	}
	return build()
}
