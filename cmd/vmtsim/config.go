package main

import (
	"flag"
	"fmt"
	"time"

	"vmt"
	"vmt/internal/fault"
	"vmt/internal/workload"
)

// simOptions carries the presentation knobs that ride alongside the
// simulation configuration on the command line.
type simOptions struct {
	// Series prints the hourly cooling-load series after the summary.
	Series bool
	// Baseline also runs a round-robin baseline for the reduction row.
	Baseline bool
	// Serve opens a Session and drives it over the -debug-addr HTTP
	// server (/observe, /step, /place) instead of running to completion.
	Serve bool
}

// registerConfigFlags declares every simulation flag on fs and returns
// a builder that assembles the validated Config after fs.Parse. Keeping
// declaration and assembly together (and separate from main's
// observability wiring) gives the fuzz harness the exact surface the
// CLI exposes: any argv must either produce a Validate-clean Config or
// return an error — never panic.
func registerConfigFlags(fs *flag.FlagSet) func() (vmt.Config, simOptions, error) {
	policy := fs.String("policy", "vmt-ta", "placement policy: round-robin, coolest-first, vmt-ta, vmt-wa")
	gv := fs.Float64("gv", 22, "grouping value for the VMT policies")
	servers := fs.Int("servers", 100, "cluster size")
	threshold := fs.Float64("threshold", 0.98, "VMT-WA wax threshold")
	inletStdev := fs.Float64("inlet-stdev", 0, "per-server inlet temperature stdev (°C)")
	seed := fs.Uint64("seed", 0, "random seed for inlet variation")
	series := fs.Bool("series", false, "print the hourly cooling-load series")
	jobStream := fs.Bool("jobstream", false, "use the query-level load model (Poisson task arrivals)")
	baseline := fs.Bool("baseline", true, "also run a round-robin baseline and report the peak reduction")
	physicsWorkers := fs.Int("physics-workers", 0,
		"per-tick physics goroutines (0 = auto: serial for small clusters, bounded by GOMAXPROCS otherwise); results are identical for any value")
	source := fs.String("source", "",
		`arrival source spec as JSON (e.g. '{"kind":"poisson","level":0.5,"events":30}'); replaces the two-day trace with a seeded open-loop generator`)
	faults := fs.String("faults", "",
		`fault plan as JSON (e.g. '{"crashes":[{"server":3,"at_min":120,"repair_after_min":60}]}'); crashes, sensor faults, correlated domain trips, byzantine reports`)
	horizonMin := fs.Float64("horizon-min", 0,
		"stop the simulation after this many minutes (0 = the source's natural length; required with -source unless -serve)")
	serve := fs.Bool("serve", false,
		"open a resumable session and drive it over the -debug-addr HTTP server (/observe, /step, /place) instead of running to completion")
	return func() (vmt.Config, simOptions, error) {
		cfg := vmt.Config{
			Servers:        *servers,
			Policy:         vmt.Policy(*policy),
			GV:             *gv,
			WaxThreshold:   vmt.Some(*threshold),
			InletStdevC:    *inletStdev,
			Seed:           *seed,
			JobStream:      *jobStream,
			PhysicsWorkers: *physicsWorkers,
		}
		if *source != "" {
			spec, err := workload.ParseSourceSpec([]byte(*source))
			if err != nil {
				return vmt.Config{}, simOptions{}, fmt.Errorf("-source: %w", err)
			}
			cfg.Source = spec
		}
		if *faults != "" {
			plan, err := fault.ParsePlan([]byte(*faults))
			if err != nil {
				return vmt.Config{}, simOptions{}, fmt.Errorf("-faults: %w", err)
			}
			cfg.Faults = plan
		}
		if *horizonMin < 0 {
			return vmt.Config{}, simOptions{}, fmt.Errorf("-horizon-min must be non-negative, got %v", *horizonMin)
		}
		cfg.Horizon = time.Duration(*horizonMin * float64(time.Minute))
		if err := cfg.Validate(); err != nil {
			return vmt.Config{}, simOptions{}, fmt.Errorf("invalid configuration: %w", err)
		}
		return cfg, simOptions{Series: *series, Baseline: *baseline, Serve: *serve}, nil
	}
}

// buildConfig parses args (argv without the program name) into a
// validated Config — the single entry point main and the fuzz harness
// share.
func buildConfig(fs *flag.FlagSet, args []string) (vmt.Config, simOptions, error) {
	build := registerConfigFlags(fs)
	if err := fs.Parse(args); err != nil {
		return vmt.Config{}, simOptions{}, err
	}
	return build()
}
