# Convenience targets; `make check` is the repo's full verification
# (gofmt, vet, lint, build, tests, race pass) — see scripts/check.sh.

.PHONY: check test lint bench build

check:
	sh scripts/check.sh

test:
	go test ./...

lint:
	go run ./cmd/vmtlint -strict -cache .vmtlint-cache ./...

build:
	go build ./...

bench:
	go test -bench=. -benchmem ./...
