# Convenience targets; `make check` is the repo's full verification
# (gofmt, vet, build, tests, race pass) — see scripts/check.sh.

.PHONY: check test bench build

check:
	sh scripts/check.sh

test:
	go test ./...

build:
	go build ./...

bench:
	go test -bench=. -benchmem ./...
