package vmt

import (
	"context"
	"strings"
	"testing"
	"time"

	"vmt/internal/telemetry"
	"vmt/internal/trace"
	"vmt/internal/workload"
)

func sessionConfig() Config {
	cfg := Scenario(6, PolicyVMTTA, 22)
	cfg.Trace = smallTrace()
	cfg.Step = 2 * time.Minute
	return cfg
}

func TestSessionStepToCompletionMatchesRun(t *testing.T) {
	cfg := sessionConfig()
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !s.Done() {
		if err := s.Step(1); err != nil {
			t.Fatal(err)
		}
		steps++
		if steps > 10000 {
			t.Fatal("session never finished")
		}
	}
	got, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if d := identicalSeries(want, got); d != "" {
		t.Fatalf("stepped session diverged from Run: %s", d)
	}
	if got.CoolingLoadW.Len() != want.CoolingLoadW.Len() {
		t.Fatalf("sample counts: session %d, run %d", got.CoolingLoadW.Len(), want.CoolingLoadW.Len())
	}
}

func TestSessionObserve(t *testing.T) {
	s, err := Open(sessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	obs := s.Observe()
	if obs.Tick != 0 || obs.Done || len(obs.Servers) != 0 {
		t.Fatalf("pre-step observation: %+v", obs)
	}
	if err := s.Step(3); err != nil {
		t.Fatal(err)
	}
	obs = s.Observe()
	if obs.Tick != 3 || obs.SimTime != 6*time.Minute {
		t.Fatalf("after Step(3): tick=%d sim=%v", obs.Tick, obs.SimTime)
	}
	if len(obs.Servers) != 6 {
		t.Fatalf("want 6 server observations, got %d", len(obs.Servers))
	}
	if obs.TotalPowerW <= 0 || obs.MeanAirTempC <= 0 {
		t.Fatalf("aggregates not populated: %+v", obs)
	}
	if obs.BusyCores == 0 {
		t.Fatal("no jobs placed after three ticks")
	}
	if obs.HotGroupSize <= 0 {
		t.Fatalf("VMT-TA session reports hot group %d", obs.HotGroupSize)
	}
	hot := 0
	for i, so := range obs.Servers {
		if so.ID != i {
			t.Fatalf("server %d has ID %d", i, so.ID)
		}
		if so.Group == "hot" {
			hot++
		}
	}
	if hot != obs.HotGroupSize {
		t.Fatalf("hot-labeled servers %d != HotGroupSize %d", hot, obs.HotGroupSize)
	}
	if obs.Utilization < 0 || obs.Utilization > 1 {
		t.Fatalf("utilization %v out of range", obs.Utilization)
	}
}

func TestSessionPlaceDirective(t *testing.T) {
	s, err := Open(sessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Place("nope", 0); err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("unknown workload: %v", err)
	}
	if err := s.Place(workload.WebSearch.Name, 99); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range server: %v", err)
	}
	if err := s.Place(workload.WebSearch.Name, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	obs := s.Observe()
	if obs.PlacementsOverridden != 1 {
		t.Fatalf("Overridden = %d, want 1", obs.PlacementsOverridden)
	}
	if obs.Servers[5].BusyCores == 0 {
		t.Fatal("directed server received no job")
	}
}

func TestSessionSetPlacer(t *testing.T) {
	s, err := Open(sessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetPlacer(func(string) int { return 2 })
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	obs := s.Observe()
	if obs.PlacementsOverridden == 0 {
		t.Fatal("standing placer decided nothing")
	}
	if obs.Servers[2].BusyCores == 0 {
		t.Fatal("funneled server received no jobs")
	}
	s.SetPlacer(nil)
}

func TestSessionOpenEndedSource(t *testing.T) {
	cfg := sessionConfig()
	cfg.Trace = smallTrace() // ignored once Source is set
	cfg.Source = &workload.SourceSpec{Kind: "poisson", Level: 0.5, Events: 30}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Done() {
		t.Fatal("open-ended session reports done")
	}
	if err := s.StepAll(); err == nil || !strings.Contains(err.Error(), "open-ended") {
		t.Fatalf("StepAll on open-ended session: %v", err)
	}
	// Run(cfg) must refuse too: it would never return.
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted an open-ended config")
	}
	// But stepping works indefinitely, past any trace length.
	if err := s.Step(10); err != nil {
		t.Fatal(err)
	}
	obs := s.Observe()
	if obs.Tick != 10 || obs.Done {
		t.Fatalf("after 10 steps: %+v", obs)
	}
	res, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.CoolingLoadW.Len() != 10 {
		t.Fatalf("partial result has %d samples, want 10", res.CoolingLoadW.Len())
	}
}

func TestSessionHorizonBoundsSource(t *testing.T) {
	cfg := sessionConfig()
	cfg.Source = &workload.SourceSpec{Kind: "bursty", Level: 0.3,
		BurstUtil: 0.8, BurstProb: 0.2, EpochMin: 10}
	cfg.Horizon = 40 * time.Minute // 20 ticks at the 2-minute step
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoolingLoadW.Len() != 20 {
		t.Fatalf("horizon run has %d samples, want 20", res.CoolingLoadW.Len())
	}
	// Step past the horizon: the clamp stops exactly at it.
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(1000); err != nil {
		t.Fatal(err)
	}
	if !s.Done() || s.Tick() != 20 {
		t.Fatalf("after clamped step: done=%v tick=%d", s.Done(), s.Tick())
	}
	got, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if d := identicalSeries(res, got); d != "" {
		t.Fatalf("horizon-clamped session diverged: %s", d)
	}
}

func TestSessionSourceAndCustomTraceExclusive(t *testing.T) {
	cfg := sessionConfig()
	cfg.Source = &workload.SourceSpec{Kind: "poisson", Level: 0.5, Events: 30}
	tr, err := trace.Generate(cfg.Trace, cfg.Step)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CustomTrace = tr
	if _, err := Open(cfg); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("Source+CustomTrace: %v", err)
	}
}

func TestSessionCancellationPartialResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := OpenCtx(ctx, sessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(2); err != nil {
		t.Fatal(err)
	}
	cancel()
	err = s.Step(5)
	if err != context.Canceled {
		t.Fatalf("step after cancel: %v", err)
	}
	res, err := s.Close()
	if err != context.Canceled {
		t.Fatalf("close after cancel: %v", err)
	}
	// The partial prefix is clean: the two pre-cancel ticks sampled.
	if res == nil || res.CoolingLoadW.Len() != 2 {
		t.Fatalf("partial result: %+v", res)
	}
	// A closed session refuses further work, idempotently.
	if err := s.Step(1); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("step after close: %v", err)
	}
	if _, err := s.Close(); err != context.Canceled {
		t.Fatalf("second close: %v", err)
	}
}

func TestSessionStreamSealsOnStepBoundaries(t *testing.T) {
	var recs []telemetry.WindowRecord
	sink := sinkFunc(func(rec telemetry.WindowRecord) { recs = append(recs, rec) })
	cfg := sessionConfig()
	cfg.Stream = telemetry.NewStream(telemetry.StreamOptions{WindowTicks: 4, Sink: sink})
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Window 0 covers ticks [0,3]; sample ticks are 1-based, so after
	// Step(3) it has seen every tick it ever will (1..3) and the step
	// boundary seals it without waiting for the run to end.
	if err := s.Step(3); err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no windows sealed on the step boundary")
	}
	sealed := len(recs)
	// Two more ticks open (but do not complete) window 1; Close's
	// flush seals the trailing partial.
	if err := s.Step(2); err != nil {
		t.Fatal(err)
	}
	if len(recs) != sealed {
		t.Fatalf("incomplete window sealed early: %d -> %d records", sealed, len(recs))
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(recs) <= sealed {
		t.Fatal("close sealed no trailing windows")
	}
}

type sinkFunc func(telemetry.WindowRecord)

func (f sinkFunc) EmitWindow(rec telemetry.WindowRecord) { f(rec) }
