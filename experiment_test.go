package vmt

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"vmt/internal/experiment"
	"vmt/internal/telemetry"
	"vmt/internal/trace"
)

// withSmallTrace pins a spec to the fast single-day test trace.
func withSmallTrace(spec experiment.Spec) experiment.Spec {
	if spec.Base == nil {
		spec.Base = experiment.Settings{}
	}
	spec.Base["trace"] = traceSetting(smallTrace())
	return spec
}

func TestConfigKeyCanonical(t *testing.T) {
	base := Scenario(5, PolicyVMTTA, 22)
	k1, err := configKey(base)
	if err != nil {
		t.Fatal(err)
	}
	// Observational knobs and the physics worker count are not part of
	// the run's identity.
	same := base
	same.PhysicsWorkers = 8
	same.Metrics = telemetry.NewRegistry()
	k2, err := configKey(same)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("observational fields changed the config key")
	}
	// Explicit defaults hash like resolved zeros.
	explicit := base
	explicit.InletTempC = Some(22.0)
	explicit.Step = time.Minute
	k3, err := configKey(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k3 {
		t.Error("explicit paper defaults hash differently from zero values")
	}
	// Simulation-relevant fields are.
	diff := base
	diff.GV = 24
	k4, err := configKey(diff)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k4 {
		t.Error("distinct GVs collided")
	}
	// A custom trace overrides the spec trace entirely.
	tr, err := trace.FromSamples(make([]float64, 60), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	c1 := base
	c1.CustomTrace = tr
	c2 := base
	c2.CustomTrace = tr
	c2.Trace = smallTrace() // ignored when CustomTrace is set
	k5, _ := configKey(c1)
	k6, _ := configKey(c2)
	if k5 != k6 {
		t.Error("ignored Trace field changed a custom-trace key")
	}
	if k5 == k1 {
		t.Error("custom trace collided with the spec trace")
	}
}

func TestRunManyCachedDedup(t *testing.T) {
	defer runCache.SetEnabled(true)
	runCache.SetEnabled(true)

	reg := telemetry.NewRegistry()
	cfg := BaselineScenario(3)
	cfg.Trace = smallTrace()
	vmtCfg := Scenario(3, PolicyVMTTA, 22)
	vmtCfg.Trace = smallTrace()

	// Unique per-test configs (seed) so earlier tests' cache entries
	// cannot interfere with the counters.
	cfg.Seed = 777
	vmtCfg.Seed = 777

	runs, err := RunManyCached([]Config{cfg, vmtCfg, cfg}, BatchOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0] != runs[2] {
		t.Error("duplicate configs should share one result")
	}
	if hits := reg.Counter("experiment_cache_hits").Value(); hits != 1 {
		t.Errorf("first batch hits = %d, want 1 (intra-batch dup)", hits)
	}
	if misses := reg.Counter("experiment_cache_misses").Value(); misses != 2 {
		t.Errorf("first batch misses = %d, want 2", misses)
	}

	// Second batch: everything is cached, and cached results are the
	// same pointers.
	runs2, err := RunManyCached([]Config{cfg, vmtCfg}, BatchOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if runs2[0] != runs[0] || runs2[1] != runs[1] {
		t.Error("second batch should be served from the cache")
	}
	if hits := reg.Counter("experiment_cache_hits").Value(); hits != 3 {
		t.Errorf("cumulative hits = %d, want 3", hits)
	}
}

// Cache-on and cache-off executions are bit-identical: the cache only
// skips simulating configurations whose result is already known.
func TestRunManyCachedBitIdenticalDisabled(t *testing.T) {
	defer runCache.SetEnabled(true)

	cfg := Scenario(4, PolicyVMTWA, 20)
	cfg.Trace = smallTrace()
	cfg.Seed = 778

	runCache.SetEnabled(true)
	on, err := RunManyCached([]Config{cfg, cfg}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runCache.SetEnabled(false)
	off, err := RunManyCached([]Config{cfg, cfg}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if off[0] == off[1] {
		t.Error("disabled cache should not dedup")
	}
	for _, res := range [3]*Result{on[0], off[0], off[1]} {
		if res.CoolingLoadW.Len() != on[1].CoolingLoadW.Len() {
			t.Fatal("series lengths diverged")
		}
		for i, v := range on[1].CoolingLoadW.Values {
			if res.CoolingLoadW.Values[i] != v {
				t.Fatalf("cooling sample %d diverged cache-on vs cache-off", i)
			}
		}
	}
}

func TestRunManyCachedPartialFailure(t *testing.T) {
	good := BaselineScenario(3)
	good.Trace = smallTrace()
	good.Seed = 779
	bad := Scenario(0, PolicyRoundRobin, 0) // zero servers: fails validation
	_, err := RunManyCached([]Config{good, bad}, BatchOptions{})
	re, ok := err.(*RunError)
	if !ok {
		t.Fatalf("want *RunError, got %v", err)
	}
	if re.Index != 1 {
		t.Fatalf("failure index = %d, want 1 (remapped through the plan)", re.Index)
	}
	// The failed config must not poison the cache.
	if _, err := RunManyCached([]Config{good}, BatchOptions{}); err != nil {
		t.Fatal(err)
	}
}

// The spec path and the pre-engine direct path produce bit-identical
// sweeps.
func TestRunSpecMatchesDirect(t *testing.T) {
	gvs := []float64{20, 24}
	spec := withSmallTrace(GVSweepSpec(4, PolicyVMTTA, gvs))
	sr, err := RunSpecResults(spec, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	baseCfg := BaselineScenario(4)
	baseCfg.Trace = smallTrace()
	baseline, err := Run(baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, gv := range gvs {
		cfg := Scenario(4, PolicyVMTTA, gv)
		cfg.Trace = smallTrace()
		direct, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := sr.Results[i]
		if got.CoolingLoadW.Len() != direct.CoolingLoadW.Len() {
			t.Fatalf("gv %g: series length diverged", gv)
		}
		for j, v := range direct.CoolingLoadW.Values {
			if got.CoolingLoadW.Values[j] != v {
				t.Fatalf("gv %g sample %d: spec path diverged from direct Run", gv, j)
			}
		}
	}
	for j, v := range baseline.CoolingLoadW.Values {
		if sr.Baselines[0].CoolingLoadW.Values[j] != v {
			t.Fatalf("baseline sample %d diverged", j)
		}
	}
}

// Encode → decode → execute: the full spec-file path check.sh
// exercises. The decoded spec must expand to the same grid and reduce
// to the same rows as the in-memory one.
func TestSpecRoundTripExecute(t *testing.T) {
	spec := withSmallTrace(GVSweepSpec(3, PolicyVMTTA, []float64{20, 24}))
	var buf bytes.Buffer
	if err := spec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := experiment.DecodeSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunSpec(spec, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSpec(decoded, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("row count changed: %d vs %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if got.Rows[i].Values["reduction_pct"] != want.Rows[i].Values["reduction_pct"] {
			t.Errorf("row %d: decoded spec produced %v, in-memory %v",
				i, got.Rows[i].Values["reduction_pct"], want.Rows[i].Values["reduction_pct"])
		}
		if got.Rows[i].Labels["gv"] != want.Rows[i].Labels["gv"] {
			t.Errorf("row %d labels diverged", i)
		}
	}
}

func TestRunSpecMeanAndBestReducers(t *testing.T) {
	// Mean over seeds.
	mean := withSmallTrace(InletVariationSpec(3, PolicyVMTTA, []float64{22}, []float64{1}, 2))
	rep, err := RunSpec(mean, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("mean reducer rows = %d, want 1", len(rep.Rows))
	}
	if _, ok := rep.Rows[0].Labels["seed"]; ok {
		t.Error("mean reducer leaked the averaged axis label")
	}
	// Best over the GV grid.
	best := withSmallTrace(PMTSweepSpec(3, []float64{35.7}, []float64{20, 24}))
	rep, err = RunSpec(best, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("best reducer rows = %d, want 1", len(rep.Rows))
	}
	bestGV, ok := rep.Rows[0].Values["best_gv"]
	if !ok || (bestGV != 20 && bestGV != 24) {
		t.Errorf("best reducer gv = %v, want a grid value", rep.Rows[0].Values)
	}
}

func TestConfigFromSettingsErrors(t *testing.T) {
	cases := []struct {
		name string
		s    experiment.Settings
		want string
	}{
		{"unknown key", experiment.Settings{"wat": 1.0}, "unknown setting"},
		{"bad policy", experiment.Settings{"policy": "nope"}, "unknown policy"},
		{"bad policy type", experiment.Settings{"policy": 3.0}, "want string"},
		{"bad servers", experiment.Settings{"servers": 1.5}, "want integer"},
		{"bad material", experiment.Settings{"material": "gold"}, "unknown material"},
		{"bad bool", experiment.Settings{"oracle_wax_state": 1.0}, "want bool"},
		{"bad trace", experiment.Settings{"trace": map[string]any{"dayz": 2.0}}, "unknown trace setting"},
		{"negative seed", experiment.Settings{"seed": -1.0}, "negative"},
	}
	for _, tc := range cases {
		_, err := configFromSettings(tc.s)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	// The full vocabulary parses.
	cfg, err := configFromSettings(experiment.Settings{
		"servers": 8, "policy": "vmt-wa", "gv": 22.0, "wax_threshold": 0.9,
		"oracle_wax_state": true, "migration_budget_frac": 0.1,
		"inlet_c": 24.0, "inlet_stdev_c": 1.0, "seed": 3.0,
		"pmt_c": 37.0, "volume_l": 5.0, "power_scale": 1.1,
		"trace": traceSetting(smallTrace()), "record_grids": true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Servers != 8 || cfg.Policy != PolicyVMTWA || cfg.GV != 22 ||
		cfg.Material.Value().MeltTempC != 37 || cfg.Server.Value().WaxVolumeL != 5 ||
		cfg.Server.Value().PowerScale != 1.1 || cfg.Seed != 3 || !cfg.RecordGrids {
		t.Fatalf("settings lost: %+v", cfg)
	}
	if cfg.Trace.Days != 1 {
		t.Fatalf("trace setting lost: %+v", cfg.Trace)
	}
}

// RunManyCached is safe under concurrent study execution; check.sh
// runs this under -race (the TestRunMany pattern matches it).
func TestRunManyCachedConcurrentStudies(t *testing.T) {
	defer runCache.SetEnabled(true)
	runCache.SetEnabled(true)
	cfg := BaselineScenario(3)
	cfg.Trace = smallTrace()
	cfg.Seed = 780
	vmtCfg := Scenario(3, PolicyVMTTA, 22)
	vmtCfg.Trace = smallTrace()
	vmtCfg.Seed = 780

	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			_, err := RunManyCached([]Config{cfg, vmtCfg}, BatchOptions{})
			errc <- err
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestCacheKeyExclusionsConsistent is the runtime mirror of vmtlint's
// cachekey analyzer: every exported Config field must be either a
// hashableConfig field or a documented cacheKeyExclusions entry — never
// both, never neither — and every exclusion key must name a live field.
func TestCacheKeyExclusionsConsistent(t *testing.T) {
	hashed := map[string]bool{}
	ht := reflect.TypeOf(hashableConfig{})
	for i := 0; i < ht.NumField(); i++ {
		hashed[ht.Field(i).Name] = true
	}

	ct := reflect.TypeOf(Config{})
	fields := map[string]bool{}
	for i := 0; i < ct.NumField(); i++ {
		f := ct.Field(i)
		if !f.IsExported() {
			continue
		}
		fields[f.Name] = true
		_, excluded := cacheKeyExclusions[f.Name]
		switch {
		case hashed[f.Name] && excluded:
			t.Errorf("Config.%s is both hashed and excluded; pick one", f.Name)
		case !hashed[f.Name] && !excluded:
			t.Errorf("Config.%s is neither hashed in hashableConfig nor excluded in cacheKeyExclusions", f.Name)
		}
	}
	for name, reason := range cacheKeyExclusions {
		if !fields[name] {
			t.Errorf("cacheKeyExclusions lists %q, which is not an exported Config field", name)
		}
		if strings.TrimSpace(reason) == "" {
			t.Errorf("cacheKeyExclusions[%q] has an empty reason", name)
		}
	}
}
