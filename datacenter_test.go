package vmt

import (
	"testing"

	"vmt/internal/chiller"
)

func TestRunFacilityAggregates(t *testing.T) {
	mk := func(policy Policy, gv float64) Config {
		c := Scenario(4, policy, gv)
		c.Trace = smallTrace()
		return c
	}
	fac := Facility{
		Clusters:        []Config{mk(PolicyRoundRobin, 0), mk(PolicyVMTTA, 22)},
		PlantMarginFrac: 0.05,
	}
	res, err := RunFacility(fac, Optional[chiller.Plant]{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCluster) != 2 {
		t.Fatalf("clusters = %d", len(res.PerCluster))
	}
	// The facility series is the sum of the member series.
	for i := range res.CoolingLoadW.Values {
		want := res.PerCluster[0].CoolingLoadW.Values[i] + res.PerCluster[1].CoolingLoadW.Values[i]
		if got := res.CoolingLoadW.Values[i]; got != want {
			t.Fatalf("sum wrong at %d: %v != %v", i, got, want)
		}
	}
	// Auto-sized plant covers the peak with margin and never violates.
	peak, _, _ := res.CoolingLoadW.Peak()
	if res.Plant.CapacityW <= peak {
		t.Fatalf("plant %v should exceed peak %v", res.Plant.CapacityW, peak)
	}
	if res.PlantEval.Violations != 0 {
		t.Fatalf("auto-sized plant violated %d times", res.PlantEval.Violations)
	}
	if res.PlantEval.EnergyKWh <= 0 {
		t.Fatal("plant energy should be positive")
	}
}

func TestRunFacilityErrors(t *testing.T) {
	if _, err := RunFacility(Facility{}, Optional[chiller.Plant]{}); err == nil {
		t.Fatal("empty facility should fail")
	}
	short := BaselineScenario(2)
	short.Trace = smallTrace()
	long := BaselineScenario(2) // full two-day default
	if _, err := RunFacility(Facility{Clusters: []Config{short, long}}, Optional[chiller.Plant]{}); err == nil {
		t.Fatal("mismatched trace lengths should fail")
	}
	bad := BaselineScenario(0)
	if _, err := RunFacility(Facility{Clusters: []Config{bad}}, Optional[chiller.Plant]{}); err == nil {
		t.Fatal("invalid member should fail")
	}
}

func TestRunFacilityExplicitPlant(t *testing.T) {
	c := BaselineScenario(4)
	c.Trace = smallTrace()
	tiny := chiller.PaperPlant(10) // absurdly small: every sample violates
	res, err := RunFacility(Facility{Clusters: []Config{c}}, Some(tiny))
	if err != nil {
		t.Fatal(err)
	}
	if res.PlantEval.Violations == 0 {
		t.Fatal("undersized plant should violate")
	}
	if res.Plant != tiny {
		t.Fatal("explicit plant should be used verbatim")
	}
}

// The headline oversubscription claim, validated in simulation: with a
// modest safety derate, the enlarged VMT fleet fits under the
// round-robin fleet's cooling budget.
func TestOversubscriptionFitsWithSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-day cluster runs")
	}
	st, err := RunOversubscriptionStudy(200, PolicyVMTTA, 22, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if st.ExtraServers <= 0 {
		t.Fatalf("no extra servers: %+v", st)
	}
	if !st.FitsBudget {
		t.Fatalf("derated expansion should fit: %+v", st)
	}
	if st.HeadroomPct <= 0 {
		t.Fatalf("headroom should be positive, got %v", st.HeadroomPct)
	}
	if st.MeasuredReductionPct < 8 {
		t.Fatalf("measured reduction %v implausibly low", st.MeasuredReductionPct)
	}
}

func TestOversubscriptionValidation(t *testing.T) {
	if _, err := RunOversubscriptionStudy(10, PolicyVMTTA, 22, -0.1); err == nil {
		t.Fatal("negative safety should fail")
	}
	if _, err := RunOversubscriptionStudy(10, PolicyVMTTA, 22, 1); err == nil {
		t.Fatal("safety of 1 should fail")
	}
	if _, err := RunOversubscriptionStudy(0, PolicyVMTTA, 22, 0); err == nil {
		t.Fatal("zero servers should fail")
	}
}
