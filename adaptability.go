package vmt

import (
	"fmt"

	"vmt/internal/experiment"
)

// This file implements the studies behind the paper's motivation
// (Section I): a passive TTS deployment is pinned to one physical
// melting temperature, so ambient changes (season to season) or
// workload power drift (over a server's lifetime) strand the wax,
// while VMT retunes in software by adjusting the GV.

// AdaptabilityPoint is one operating condition in an adaptability
// sweep.
type AdaptabilityPoint struct {
	// Condition is the swept value: inlet temperature (°C) for the
	// ambient sweep, power scale for the drift sweep.
	Condition float64
	// TTSReductionPct is what the fixed 35.7 °C wax achieves under
	// passive round-robin placement (vs a wax-free fleet).
	TTSReductionPct float64
	// BestGV is the grouping value VMT retuned to.
	BestGV float64
	// VMTReductionPct is what VMT-TA achieves at BestGV (vs the same
	// wax-free fleet).
	VMTReductionPct float64
}

// adaptabilitySweep executes a (condition × variant) adaptability spec
// and reduces it per condition: the passive-TTS reduction and the best
// retuned VMT-TA reduction over the GV grid, both against the wax-free
// round-robin fleet at the same condition. The arithmetic — including
// the -1e9 argmax floor — matches the pre-engine sequential loops
// exactly.
func adaptabilitySweep(spec experiment.Spec, conditions, gvs []float64) ([]AdaptabilityPoint, error) {
	sr, err := RunSpecResults(spec, BatchOptions{})
	if err != nil {
		return nil, err
	}
	variants := 1 + len(gvs) // case "tts" leads, then the GV grid
	out := make([]AdaptabilityPoint, 0, len(conditions))
	for ci, cond := range conditions {
		at := ci * variants
		base := sr.BaselineFor(at).PeakCoolingW()
		if base <= 0 {
			return nil, fmt.Errorf("vmt: non-positive baseline peak")
		}
		tts := (base - sr.Results[at].PeakCoolingW()) / base * 100
		bestGV, bestRed := 0.0, -1e9
		for gi, gv := range gvs {
			red := (base - sr.Results[at+1+gi].PeakCoolingW()) / base * 100
			if red > bestRed {
				bestGV, bestRed = gv, red
			}
		}
		out = append(out, AdaptabilityPoint{
			Condition:       cond,
			TTSReductionPct: tts,
			BestGV:          bestGV,
			VMTReductionPct: bestRed,
		})
	}
	return out, nil
}

// AmbientSweep evaluates TTS vs retuned VMT across inlet temperatures
// (the "season to season" motivation). The fixed wax only helps in the
// narrow ambient band where round-robin temperatures happen to cross
// its melting point; VMT tracks the band by re-selecting the GV.
func AmbientSweep(servers int, inletsC, gvs []float64) ([]AdaptabilityPoint, error) {
	if len(inletsC) == 0 || len(gvs) == 0 {
		return nil, fmt.Errorf("vmt: need inlets and a GV grid")
	}
	return adaptabilitySweep(AmbientSweepSpec(servers, inletsC, gvs), inletsC, gvs)
}

// DriftSweep evaluates TTS vs retuned VMT as workload power drifts
// (the "power profile changes over the lifetime of a server"
// motivation), by scaling the per-core power model.
func DriftSweep(servers int, powerScales, gvs []float64) ([]AdaptabilityPoint, error) {
	if len(powerScales) == 0 || len(gvs) == 0 {
		return nil, fmt.Errorf("vmt: need power scales and a GV grid")
	}
	return adaptabilitySweep(DriftSweepSpec(servers, powerScales, gvs), powerScales, gvs)
}

// DefaultGVGrid is the retuning grid the adaptability studies search:
// from aggressive concentration (GV=18) to whole-cluster spreading
// (GV=PMT, where the hot group is the entire fleet and VMT degenerates
// to balanced placement — the right answer when passive melting is
// already too eager).
func DefaultGVGrid() []float64 {
	return []float64{18, 20, 22, 24, 26, 28, 30, 32, 35.7}
}
