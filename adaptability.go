package vmt

import (
	"fmt"

	"vmt/internal/pcm"
	"vmt/internal/thermal"
)

// This file implements the studies behind the paper's motivation
// (Section I): a passive TTS deployment is pinned to one physical
// melting temperature, so ambient changes (season to season) or
// workload power drift (over a server's lifetime) strand the wax,
// while VMT retunes in software by adjusting the GV.

// AdaptabilityPoint is one operating condition in an adaptability
// sweep.
type AdaptabilityPoint struct {
	// Condition is the swept value: inlet temperature (°C) for the
	// ambient sweep, power scale for the drift sweep.
	Condition float64
	// TTSReductionPct is what the fixed 35.7 °C wax achieves under
	// passive round-robin placement (vs a wax-free fleet).
	TTSReductionPct float64
	// BestGV is the grouping value VMT retuned to.
	BestGV float64
	// VMTReductionPct is what VMT-TA achieves at BestGV (vs the same
	// wax-free fleet).
	VMTReductionPct float64
}

// noWax returns cfg with the PCM replaced by an inert filler of equal
// thermal mass — the "no TTS" reference fleet.
func noWax(cfg Config) Config {
	cfg.Material = pcm.Inert()
	return cfg
}

// reductionVsNoWax runs cfg and an identical wax-free round-robin
// fleet, returning cfg's peak reduction against it.
func reductionVsNoWax(cfg Config) (float64, error) {
	ref := noWax(cfg)
	ref.Policy = PolicyRoundRobin
	ref.GV = 0
	runs, err := RunMany([]Config{ref, cfg})
	if err != nil {
		return 0, err
	}
	base := runs[0].PeakCoolingW()
	if base <= 0 {
		return 0, fmt.Errorf("vmt: non-positive baseline peak")
	}
	return (base - runs[1].PeakCoolingW()) / base * 100, nil
}

// bestVMT returns the best VMT-TA reduction over the GV grid, with the
// winning GV.
func bestVMT(cfg Config, gvs []float64) (bestGV, bestRed float64, err error) {
	cfgs := make([]Config, len(gvs))
	for i, gv := range gvs {
		c := cfg
		c.Policy = PolicyVMTTA
		c.GV = gv
		cfgs[i] = c
	}
	ref := noWax(cfg)
	ref.Policy = PolicyRoundRobin
	ref.GV = 0
	all := append([]Config{ref}, cfgs...)
	runs, err := RunMany(all)
	if err != nil {
		return 0, 0, err
	}
	base := runs[0].PeakCoolingW()
	if base <= 0 {
		return 0, 0, fmt.Errorf("vmt: non-positive baseline peak")
	}
	bestRed = -1e9
	for i, gv := range gvs {
		red := (base - runs[i+1].PeakCoolingW()) / base * 100
		if red > bestRed {
			bestGV, bestRed = gv, red
		}
	}
	return bestGV, bestRed, nil
}

// AmbientSweep evaluates TTS vs retuned VMT across inlet temperatures
// (the "season to season" motivation). The fixed wax only helps in the
// narrow ambient band where round-robin temperatures happen to cross
// its melting point; VMT tracks the band by re-selecting the GV.
func AmbientSweep(servers int, inletsC, gvs []float64) ([]AdaptabilityPoint, error) {
	if len(inletsC) == 0 || len(gvs) == 0 {
		return nil, fmt.Errorf("vmt: need inlets and a GV grid")
	}
	out := make([]AdaptabilityPoint, 0, len(inletsC))
	for _, inlet := range inletsC {
		cfg := Scenario(servers, PolicyRoundRobin, 0)
		cfg.InletTempC = inlet
		tts, err := reductionVsNoWax(cfg)
		if err != nil {
			return nil, err
		}
		gv, vmtRed, err := bestVMT(cfg, gvs)
		if err != nil {
			return nil, err
		}
		out = append(out, AdaptabilityPoint{
			Condition:       inlet,
			TTSReductionPct: tts,
			BestGV:          gv,
			VMTReductionPct: vmtRed,
		})
	}
	return out, nil
}

// DriftSweep evaluates TTS vs retuned VMT as workload power drifts
// (the "power profile changes over the lifetime of a server"
// motivation), by scaling the per-core power model.
func DriftSweep(servers int, powerScales, gvs []float64) ([]AdaptabilityPoint, error) {
	if len(powerScales) == 0 || len(gvs) == 0 {
		return nil, fmt.Errorf("vmt: need power scales and a GV grid")
	}
	out := make([]AdaptabilityPoint, 0, len(powerScales))
	for _, scale := range powerScales {
		spec := thermal.PaperServer()
		spec.PowerScale = scale
		cfg := Scenario(servers, PolicyRoundRobin, 0)
		cfg.Server = spec
		tts, err := reductionVsNoWax(cfg)
		if err != nil {
			return nil, err
		}
		gv, vmtRed, err := bestVMT(cfg, gvs)
		if err != nil {
			return nil, err
		}
		out = append(out, AdaptabilityPoint{
			Condition:       scale,
			TTSReductionPct: tts,
			BestGV:          gv,
			VMTReductionPct: vmtRed,
		})
	}
	return out, nil
}

// DefaultGVGrid is the retuning grid the adaptability studies search:
// from aggressive concentration (GV=18) to whole-cluster spreading
// (GV=PMT, where the hot group is the entire fleet and VMT degenerates
// to balanced placement — the right answer when passive melting is
// already too eager).
func DefaultGVGrid() []float64 {
	return []float64{18, 20, 22, 24, 26, 28, 30, 32, 35.7}
}
