package vmt

import "testing"

func TestAdaptiveGVValidation(t *testing.T) {
	if _, err := RunAdaptiveGVStudy(10, 10, []float64{0.9}, DefaultGVGrid()); err == nil {
		t.Fatal("single day should fail")
	}
	if _, err := RunAdaptiveGVStudy(10, 10, []float64{0.9, 0.9}, nil); err == nil {
		t.Fatal("empty grid should fail")
	}
}

func TestTuneGVOnTraceEdges(t *testing.T) {
	day := make([]float64, 24*60)
	for i := range day {
		day[i] = 0.5
	}
	if _, err := tuneGVOnTrace(5, day, nil); err == nil {
		t.Fatal("empty GV grid should fail")
	}
	// A single-day forecast trace tunes fine and picks from the grid.
	gv, err := tuneGVOnTrace(5, day, []float64{20, 24})
	if err != nil {
		t.Fatal(err)
	}
	if gv != 20 && gv != 24 {
		t.Fatalf("tuned GV %v not on the grid", gv)
	}
	// Tuning is a pure argmax over deterministic runs: repeatable.
	gv2, err := tuneGVOnTrace(5, day, []float64{20, 24})
	if err != nil {
		t.Fatal(err)
	}
	if gv2 != gv {
		t.Fatalf("tuning not deterministic: %v then %v", gv, gv2)
	}
}

// The run cache is purely an execution shortcut: the whole closed-loop
// study is bit-identical with the cache on and off.
func TestAdaptiveGVStudyCacheBitIdentical(t *testing.T) {
	days := []float64{0.7, 0.9}
	grid := []float64{20, 24}
	defer runCache.SetEnabled(true)

	runCache.SetEnabled(true)
	runCache.Reset()
	on, err := RunAdaptiveGVStudy(6, 4, days, grid)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := runCache.Stats(); misses == 0 {
		t.Fatal("enabled cache recorded no executions")
	}

	runCache.SetEnabled(false)
	runCache.Reset()
	off, err := RunAdaptiveGVStudy(6, 4, days, grid)
	if err != nil {
		t.Fatal(err)
	}

	if on.StaticGV != off.StaticGV {
		t.Errorf("StaticGV diverged: %v vs %v", on.StaticGV, off.StaticGV)
	}
	for d := range on.ChosenGVs {
		if on.ChosenGVs[d] != off.ChosenGVs[d] {
			t.Errorf("day %d ChosenGV diverged: %v vs %v", d, on.ChosenGVs[d], off.ChosenGVs[d])
		}
	}
	for d := range on.AdaptiveDaily {
		if on.AdaptiveDaily[d] != off.AdaptiveDaily[d] {
			t.Errorf("day %d adaptive reduction diverged: %v vs %v",
				d, on.AdaptiveDaily[d], off.AdaptiveDaily[d])
		}
		if on.StaticDaily[d] != off.StaticDaily[d] {
			t.Errorf("day %d static reduction diverged: %v vs %v",
				d, on.StaticDaily[d], off.StaticDaily[d])
		}
	}
	if on.MeanAdaptivePct != off.MeanAdaptivePct || on.MeanStaticPct != off.MeanStaticPct ||
		on.ForecastMAE != off.ForecastMAE {
		t.Errorf("aggregates diverged: %+v vs %+v", on, off)
	}
}

// The final adaptive batch reuses the baseline and static-winner runs
// bestStaticGV already simulated: spec-built configs hash identically
// to directly built ones, so those two are cache hits.
func TestAdaptiveGVStudyFinalBatchHits(t *testing.T) {
	defer runCache.SetEnabled(true)
	runCache.SetEnabled(true)
	runCache.Reset()
	if _, err := RunAdaptiveGVStudy(6, 4, []float64{0.7, 0.9}, []float64{20, 24}); err != nil {
		t.Fatal(err)
	}
	hits, _ := runCache.Stats()
	// At minimum: the shared tuning baseline (day-ahead loop), plus the
	// round-robin base and the static winner in the final batch.
	if hits < 2 {
		t.Fatalf("study recorded %d cache hits, want ≥2 (final batch should reuse bestStaticGV runs)", hits)
	}
	// And the cross-check that matters: the full-trace static config
	// built directly is already cached from the spec path.
	spec := weekSpec([]float64{0.7, 0.9})
	static := Scenario(6, PolicyVMTWA, 20)
	static.Trace = spec
	key, err := configKey(static)
	if err != nil {
		t.Fatal(err)
	}
	plan := runCache.Plan([]string{key})
	if plan.Misses() != 0 {
		t.Fatal("directly built static config missed the cache: spec-built configs hash differently")
	}
}

func TestGVScheduleValidation(t *testing.T) {
	cfg := BaselineScenario(5)
	cfg.Trace = smallTrace()
	cfg.GVSchedule = []GVChange{{At: 0, GV: 20}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("baselines cannot retune a GV")
	}
	cfg = Scenario(5, PolicyVMTTA, 22)
	cfg.Trace = smallTrace()
	cfg.GVSchedule = []GVChange{{At: 0, GV: -1}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("non-positive retune GV should fail")
	}
}

// Retuning takes effect: a run that switches GV mid-trace changes its
// hot group size at the boundary.
func TestGVScheduleRetunes(t *testing.T) {
	cfg := Scenario(20, PolicyVMTTA, 22)
	cfg.Trace = smallTrace()
	cfg.GVSchedule = []GVChange{{At: 12 * 3600e9, GV: 28}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	early := res.HotGroupSize.Values[60]                       // hour 1
	late := res.HotGroupSize.Values[res.HotGroupSize.Len()-60] // near the end
	if early != 12 {                                           // 22/35.7×20 ≈ 12.3 → 12
		t.Fatalf("early hot group = %v, want 12", early)
	}
	if late != 16 { // 28/35.7×20 ≈ 15.7 → 16
		t.Fatalf("late hot group = %v, want 16", late)
	}
}

// The closed loop on a regime-shift week (three mild days, then three
// hot days): day-ahead retuning beats the best static GV on mild days
// by concentrating harder, tracks the regime change within one day,
// and pays a bounded price only on the transition day it could not
// foresee — the Section V-C trade-off, quantified.
func TestAdaptiveGVRegimeShift(t *testing.T) {
	if testing.Short() {
		t.Skip("many full cluster runs")
	}
	week := []float64{0.75, 0.76, 0.74, 0.95, 0.94, 0.95}
	st, err := RunAdaptiveGVStudy(100, 50, week, []float64{16, 18, 20, 22, 24})
	if err != nil {
		t.Fatal(err)
	}
	// Adaptation is real: the controller does not sit on one value.
	distinct := map[float64]bool{}
	for _, gv := range st.ChosenGVs {
		distinct[gv] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("controller never retuned: %v", st.ChosenGVs)
	}
	// Mild days: adaptive concentration clearly beats the hot-day
	// compromise the static value has to make.
	for d := 0; d < 3; d++ {
		if st.AdaptiveDaily[d] < st.StaticDaily[d]+1 {
			t.Errorf("mild day %d: adaptive %.1f%% should beat static %.1f%%",
				d, st.AdaptiveDaily[d], st.StaticDaily[d])
		}
	}
	// Aggregate: adaptive at least matches the hindsight-optimal
	// static value.
	if st.MeanAdaptivePct < st.MeanStaticPct-0.5 {
		t.Fatalf("adaptive mean %.2f%% below static %.2f%%",
			st.MeanAdaptivePct, st.MeanStaticPct)
	}
	// The forecast is sane.
	if st.ForecastMAE <= 0 || st.ForecastMAE > 0.15 {
		t.Fatalf("forecast MAE %v implausible", st.ForecastMAE)
	}
	// The transition day (first hot day on a mild forecast) is the
	// known weak spot; the wax-aware policy must keep it from going
	// to zero.
	if st.AdaptiveDaily[3] < 1 {
		t.Fatalf("transition day collapsed: %.2f%%", st.AdaptiveDaily[3])
	}
}
