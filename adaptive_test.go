package vmt

import "testing"

func TestAdaptiveGVValidation(t *testing.T) {
	if _, err := RunAdaptiveGVStudy(10, 10, []float64{0.9}, DefaultGVGrid()); err == nil {
		t.Fatal("single day should fail")
	}
	if _, err := RunAdaptiveGVStudy(10, 10, []float64{0.9, 0.9}, nil); err == nil {
		t.Fatal("empty grid should fail")
	}
}

func TestGVScheduleValidation(t *testing.T) {
	cfg := Scenario(5, PolicyRoundRobin, 0)
	cfg.Trace = smallTrace()
	cfg.GVSchedule = []GVChange{{At: 0, GV: 20}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("baselines cannot retune a GV")
	}
	cfg = Scenario(5, PolicyVMTTA, 22)
	cfg.Trace = smallTrace()
	cfg.GVSchedule = []GVChange{{At: 0, GV: -1}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("non-positive retune GV should fail")
	}
}

// Retuning takes effect: a run that switches GV mid-trace changes its
// hot group size at the boundary.
func TestGVScheduleRetunes(t *testing.T) {
	cfg := Scenario(20, PolicyVMTTA, 22)
	cfg.Trace = smallTrace()
	cfg.GVSchedule = []GVChange{{At: 12 * 3600e9, GV: 28}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	early := res.HotGroupSize.Values[60]                       // hour 1
	late := res.HotGroupSize.Values[res.HotGroupSize.Len()-60] // near the end
	if early != 12 {                                           // 22/35.7×20 ≈ 12.3 → 12
		t.Fatalf("early hot group = %v, want 12", early)
	}
	if late != 16 { // 28/35.7×20 ≈ 15.7 → 16
		t.Fatalf("late hot group = %v, want 16", late)
	}
}

// The closed loop on a regime-shift week (three mild days, then three
// hot days): day-ahead retuning beats the best static GV on mild days
// by concentrating harder, tracks the regime change within one day,
// and pays a bounded price only on the transition day it could not
// foresee — the Section V-C trade-off, quantified.
func TestAdaptiveGVRegimeShift(t *testing.T) {
	if testing.Short() {
		t.Skip("many full cluster runs")
	}
	week := []float64{0.75, 0.76, 0.74, 0.95, 0.94, 0.95}
	st, err := RunAdaptiveGVStudy(100, 50, week, []float64{16, 18, 20, 22, 24})
	if err != nil {
		t.Fatal(err)
	}
	// Adaptation is real: the controller does not sit on one value.
	distinct := map[float64]bool{}
	for _, gv := range st.ChosenGVs {
		distinct[gv] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("controller never retuned: %v", st.ChosenGVs)
	}
	// Mild days: adaptive concentration clearly beats the hot-day
	// compromise the static value has to make.
	for d := 0; d < 3; d++ {
		if st.AdaptiveDaily[d] < st.StaticDaily[d]+1 {
			t.Errorf("mild day %d: adaptive %.1f%% should beat static %.1f%%",
				d, st.AdaptiveDaily[d], st.StaticDaily[d])
		}
	}
	// Aggregate: adaptive at least matches the hindsight-optimal
	// static value.
	if st.MeanAdaptivePct < st.MeanStaticPct-0.5 {
		t.Fatalf("adaptive mean %.2f%% below static %.2f%%",
			st.MeanAdaptivePct, st.MeanStaticPct)
	}
	// The forecast is sane.
	if st.ForecastMAE <= 0 || st.ForecastMAE > 0.15 {
		t.Fatalf("forecast MAE %v implausible", st.ForecastMAE)
	}
	// The transition day (first hot day on a mild forecast) is the
	// known weak spot; the wax-aware policy must keep it from going
	// to zero.
	if st.AdaptiveDaily[3] < 1 {
		t.Fatalf("transition day collapsed: %.2f%%", st.AdaptiveDaily[3])
	}
}
