package vmt

import "testing"

func TestLatencyImpactValidation(t *testing.T) {
	if _, err := RunLatencyImpactStudy(22, 0); err == nil {
		t.Fatal("zero utilization should fail")
	}
	if _, err := RunLatencyImpactStudy(22, 1.5); err == nil {
		t.Fatal("utilization above 1 should fail")
	}
}

// The SRE question: does VMT's hot-group concentration hurt search
// latency? In this composition it does not — the hot group drops the
// memory-aggressive Data Caching neighbor and search's share of a
// hot-only socket grows, so latency improves or at worst stays close.
func TestLatencyImpactSearchNotHurt(t *testing.T) {
	for _, gv := range []float64{20, 22, 24} {
		li, err := RunLatencyImpactStudy(gv, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if li.MeanDeltaPct > 10 {
			t.Errorf("GV=%g: hot group degrades search by %.1f%%", gv, li.MeanDeltaPct)
		}
		if li.RR.MeanS <= 0 || li.Hot.MeanS <= 0 {
			t.Errorf("GV=%g: non-positive latencies %+v", gv, li)
		}
		if li.SearchCoresHot < li.SearchCoresRR {
			t.Errorf("GV=%g: search's socket share should not shrink in the hot group", gv)
		}
		if li.Hot.P90S < li.Hot.MeanS || li.RR.P90S < li.RR.MeanS {
			t.Errorf("GV=%g: p90 below mean", gv)
		}
	}
}

func TestLatencyImpactMonotoneInUtil(t *testing.T) {
	lo, err := RunLatencyImpactStudy(22, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := RunLatencyImpactStudy(22, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if hi.RR.MeanS < lo.RR.MeanS {
		t.Fatalf("RR latency should not fall with load: %v -> %v", lo.RR.MeanS, hi.RR.MeanS)
	}
}
