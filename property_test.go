package vmt

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"vmt/internal/stats"
)

// identicalSeries reports the first bit-level divergence between two
// result series sets, or "" if every sample matches exactly.
func identicalSeries(a, b *Result) string {
	pairs := []struct {
		name string
		x, y *stats.Series
	}{
		{"cooling", a.CoolingLoadW, b.CoolingLoadW},
		{"power", a.TotalPowerW, b.TotalPowerW},
		{"air", a.MeanAirTempC, b.MeanAirTempC},
		{"melt", a.MeanMeltFrac, b.MeanMeltFrac},
		{"wax_energy", a.WaxEnergyJ, b.WaxEnergyJ},
	}
	for _, p := range pairs {
		if p.x.Len() != p.y.Len() {
			return p.name + ": length mismatch"
		}
		for i := range p.x.Values {
			if math.Float64bits(p.x.Values[i]) != math.Float64bits(p.y.Values[i]) {
				return p.name + ": diverged"
			}
		}
	}
	return ""
}

// Physics parallelism must be invisible in the results: any
// PhysicsWorkers value produces bit-identical series, because the
// per-server updates are independent and the reduction runs in fixed
// ID order regardless of which goroutine computed each server.
func TestPhysicsWorkersBitIdenticalProperty(t *testing.T) {
	f := func(peakPct, troughPct, noisePct uint8, seed uint64, wa, stream bool) bool {
		policy := PolicyVMTTA
		if wa {
			policy = PolicyVMTWA
		}
		base := Scenario(9, policy, 22)
		base.Trace = randomTrace(peakPct, troughPct, noisePct, seed)
		base.Step = 2 * time.Minute
		base.JobStream = stream
		base.Seed = seed

		var ref *Result
		for _, workers := range []int{1, 2, 8} {
			cfg := base
			cfg.PhysicsWorkers = workers
			res, err := Run(cfg)
			if err != nil {
				t.Logf("workers=%d: %v", workers, err)
				return false
			}
			if ref == nil {
				ref = res
				continue
			}
			if d := identicalSeries(ref, res); d != "" {
				t.Logf("workers=%d vs 1: %s", workers, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Batch parallelism must be equally invisible: RunMany with any worker
// bound reproduces the sequential results run for run.
func TestRunManyWorkerBoundsBitIdentical(t *testing.T) {
	var cfgs []Config
	for i, policy := range []Policy{PolicyRoundRobin, PolicyVMTTA, PolicyVMTWA, PolicyVMTTA} {
		cfg := Scenario(6, policy, 20+2*float64(i))
		cfg.Trace = randomTrace(uint8(40*i), 20, 3, uint64(i+1))
		cfg.Step = 2 * time.Minute
		cfgs = append(cfgs, cfg)
	}
	ref, err := RunManyN(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 100} {
		got, err := RunManyN(cfgs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range cfgs {
			if d := identicalSeries(ref[i], got[i]); d != "" {
				t.Fatalf("workers=%d, cfg %d: %s", workers, i, d)
			}
		}
	}
}
