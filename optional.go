package vmt

// Optional distinguishes "explicitly configured" from "left unset"
// without reserving an in-band sentinel value. Config fields whose
// zero value used to mean "pick the paper default" (the server spec,
// the PCM material, the inlet temperature, the wax threshold, the
// sacrifice fraction) are Optionals instead: withDefaults fills the
// unset ones by checking the explicit set flag, so no float equality
// against a sentinel is ever needed, and explicitly configuring the
// zero value (e.g. an inlet of 0 °C) becomes expressible.
//
// The zero Optional is unset. Wrap a value with Some to set it.
type Optional[T any] struct {
	value T
	set   bool
}

// Some returns an Optional holding v.
func Some[T any](v T) Optional[T] { return Optional[T]{value: v, set: true} }

// IsSet reports whether the Optional holds an explicitly set value.
func (o Optional[T]) IsSet() bool { return o.set }

// Value returns the held value, or T's zero value when unset. Resolved
// configurations (Result.Config, anything after withDefaults) always
// hold set values, so Value is the idiomatic accessor for them.
func (o Optional[T]) Value() T { return o.value }

// Or returns the held value when set, def otherwise.
func (o Optional[T]) Or(def T) T {
	if o.set {
		return o.value
	}
	return def
}
