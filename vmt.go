// Package vmt reproduces "Virtual Melting Temperature: Managing Server
// Load to Minimize Cooling Overhead with Phase Change Materials"
// (Skach et al., ISCA 2018): a datacenter-scale simulation of servers
// carrying paraffin-wax phase change material, with thermal-aware
// (VMT-TA) and wax-aware (VMT-WA) job placement that concentrates hot
// jobs to melt wax — storing peak heat and shrinking the peak cooling
// load — even when cluster-average temperatures never reach the wax's
// physical melting point.
//
// The package is a facade over the internal subsystems (event-driven
// simulator, PCM model, thermal model, schedulers). Typical use:
//
//	res, err := vmt.Run(vmt.Scenario(100, vmt.PolicyVMTTA, 22))
//	fmt.Println(res.CoolingSummary())
//
// See the examples/ directory for complete programs and bench_test.go
// for the harness that regenerates every table and figure in the
// paper's evaluation.
package vmt

import (
	"context"
	"fmt"
	"time"

	"vmt/internal/cluster"
	"vmt/internal/cooling"
	"vmt/internal/core"
	"vmt/internal/fault"
	"vmt/internal/pcm"
	"vmt/internal/sched"
	"vmt/internal/sim"
	"vmt/internal/stats"
	"vmt/internal/telemetry"
	"vmt/internal/thermal"
	"vmt/internal/trace"
	"vmt/internal/workload"
)

// Policy selects a job placement algorithm.
type Policy string

const (
	// PolicyRoundRobin is the prior TTS work's baseline scheduler.
	PolicyRoundRobin Policy = "round-robin"
	// PolicyCoolestFirst is the thermally balanced baseline.
	PolicyCoolestFirst Policy = "coolest-first"
	// PolicyVMTTA is VMT with thermal aware job placement.
	PolicyVMTTA Policy = "vmt-ta"
	// PolicyVMTWA is VMT with wax aware job placement.
	PolicyVMTWA Policy = "vmt-wa"
	// PolicyVMTPreserve is the reproduction's extension of the paper's
	// raise-the-melting-temperature idea (Section III): sacrifice part
	// of the hot group early to preserve wax for a hotter peak later.
	PolicyVMTPreserve Policy = "vmt-preserve"
)

// Config describes one cluster simulation run.
type Config struct {
	// Servers is the cluster size (the paper uses 1,000 for scale-out
	// results and 100 for parameter sweeps).
	Servers int
	// Policy selects the scheduler.
	Policy Policy
	// GV is the grouping value for the VMT policies (Equation 1);
	// ignored by the baselines.
	GV float64
	// WaxThreshold is VMT-WA's "fully melted" cutoff on the reported
	// melt fraction; zero selects the paper's 0.98.
	WaxThreshold float64
	// OracleWaxState lets VMT-WA read ground-truth melt state instead
	// of the per-server estimator (ablation only).
	OracleWaxState bool
	// MigrationBudgetFrac caps VMT-WA's per-tick migrations as a
	// fraction of cluster cores; zero selects the default 0.25
	// (ablation knob).
	MigrationBudgetFrac float64
	// GVSchedule retunes the grouping value at the given times (VMT
	// policies only) — the day-ahead adaptive operation of Section
	// V-C. Entries must have strictly increasing times.
	GVSchedule []GVChange
	// PreserveUntil and SacrificeFrac configure PolicyVMTPreserve:
	// until PreserveUntil, hot load concentrates on SacrificeFrac of
	// the hot group so the rest keeps its wax solid for the later
	// peak. Zero values select hour 30 (after day one's peak) and 0.4.
	PreserveUntil time.Duration
	SacrificeFrac float64
	// Server, Material: hardware and PCM; zero values select the
	// calibrated paper server and commercial 35.7 °C paraffin.
	Server   thermal.ServerSpec
	Material pcm.Material
	// InletTempC is the mean inlet temperature (zero → 22 °C) and
	// InletStdevC the per-server variation for Figures 19–20.
	InletTempC  float64
	InletStdevC float64
	// Seed drives every stochastic element (inlet draw; trace noise
	// adds its own seed from the trace spec).
	Seed uint64
	// Trace is the load trace spec; zero value selects the paper's
	// two-day trace.
	Trace trace.Spec
	// CustomTrace overrides Trace with an externally supplied series
	// (see trace.FromReader) — the hook for production traces.
	CustomTrace *trace.Trace
	// Mix is the workload mix; nil selects the five-workload paper
	// mix (≈60% hot).
	Mix *workload.Mix
	// Step is the scheduling/model period (zero → one minute, the
	// paper's wax-model update interval).
	Step time.Duration
	// PhysicsWorkers bounds the goroutines advancing per-server
	// physics inside each tick. Results are bit-identical for every
	// value (the per-server updates are independent and the
	// aggregation is a fixed-order sequential reduction); the knob
	// only trades goroutines for wall time. Zero picks automatically:
	// parallel for large clusters in a solo Run, serial inside RunMany
	// (whose workers already saturate the cores). Negative is invalid.
	PhysicsWorkers int
	// RecordGrids retains per-server, per-sample air temperature and
	// melt fraction (the heat-map figures). Costs O(servers×samples)
	// memory, so it defaults off.
	RecordGrids bool
	// JobStream switches task-like workloads (video, scanning,
	// clustering) from fluid reconciliation to discrete Poisson
	// arrivals with sampled durations — the query-level load model.
	// Arrivals that find no free core are dropped and counted in the
	// result. TaskDurations overrides the per-workload mean durations
	// (nil selects sched.DefaultTaskDurations).
	JobStream     bool
	TaskDurations map[string]time.Duration
	// Faults, when non-nil, injects deterministic failures: server
	// crashes/repairs (scheduled or stochastic) and melt-estimator
	// sensor faults. Part of the run's identity — the same seed and
	// plan reproduce the same Result bit for bit — so it participates
	// in the run-cache key. Nil injects nothing and leaves the hot
	// path untouched.
	Faults *fault.Plan
	// Metrics, when non-nil, receives run instrumentation: engine
	// dispatch counts and per-band wall time, scheduler placements and
	// hot-group resizes, the fleet melt-fraction histogram, and
	// time-above-PMT. Telemetry is strictly observational — results
	// are bit-identical with or without it. Safe to share one registry
	// across RunMany workers.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, receives one span event per simulation
	// phase per tick (physics, schedule, sample) with wall-clock
	// timings and key gauges; export via telemetry.Recorder as JSONL
	// or Chrome trace_event JSON. Nil disables tracing at (near) zero
	// cost.
	Tracer telemetry.Tracer
	// Stream, when non-nil, receives windowed time-series telemetry:
	// each sample tick feeds cooling_load_w, total_power_w,
	// mean_air_temp_c, mean_melt_frac, max_cpu_temp_c (and
	// hot_group_size for grouping policies) into bounded-memory
	// samplers that aggregate fixed windows of ticks into
	// min/max/mean/p99 and hand each sealed window to the stream's sink
	// the moment it closes — telemetry that is on disk while the run is
	// still going, with O(windows) memory regardless of run length.
	// Strictly observational, like Metrics and Tracer.
	Stream *telemetry.Stream
	// Fleet, when non-nil, receives one immutable FleetSnapshot per
	// sample tick: per-server air temperature, melt fraction, placement
	// group, and crash state. The publisher's atomic live view backs
	// the cliobs /fleet endpoint (scrape-safe mid-run); its optional
	// sink writes the NDJSON fleet log vmtdiff replays to find the
	// first divergent tick between two runs. Strictly observational.
	Fleet *telemetry.FleetPublisher
	// ProfileBands, when true and Metrics is set, profiles each engine
	// band (physics, fault, schedule, sample): wall time and heap
	// allocation deltas land on band_wall_ns_*/band_alloc_bytes_*/
	// band_spans_* counters, with the profiler's own cost separated
	// into profiler_self_ns, and allocation deltas attach to trace
	// spans (Chrome trace counter tracks). Strictly observational.
	ProfileBands bool
}

// Scenario returns a ready-to-run paper configuration for the given
// cluster size, policy, and GV.
func Scenario(servers int, policy Policy, gv float64) Config {
	return Config{Servers: servers, Policy: policy, GV: gv}
}

// BaselineScenario returns the round-robin reference configuration
// every study measures against: the given cluster size under the prior
// TTS work's baseline scheduler, no grouping value. Centralizing the
// construction keeps the baseline semantics in one place (and makes
// the shared-baseline run deduplication of the experiment engine easy
// to see at call sites).
func BaselineScenario(servers int) Config {
	return Scenario(servers, PolicyRoundRobin, 0)
}

// withDefaults resolves zero values to the paper's configuration.
func (c Config) withDefaults() Config {
	if c.Server == (thermal.ServerSpec{}) { //vmtlint:allow floateq zero-value "unset" sentinel, exact by construction
		c.Server = thermal.PaperServer()
	}
	if c.Material == (pcm.Material{}) { //vmtlint:allow floateq zero-value "unset" sentinel, exact by construction
		c.Material = pcm.CommercialParaffin()
	}
	if c.InletTempC == 0 { //vmtlint:allow floateq zero-value "unset" sentinel, exact by construction
		c.InletTempC = 22
	}
	if c.WaxThreshold == 0 { //vmtlint:allow floateq zero-value "unset" sentinel, exact by construction
		c.WaxThreshold = core.DefaultWaxThreshold
	}
	if c.Trace.Days == 0 {
		c.Trace = trace.PaperTwoDay()
	}
	if c.Mix == nil {
		c.Mix = workload.PaperMix()
	}
	if c.Step == 0 {
		c.Step = time.Minute
	}
	if c.PreserveUntil == 0 {
		c.PreserveUntil = 30 * time.Hour // past day one's peak and trough
	}
	if c.SacrificeFrac == 0 { //vmtlint:allow floateq zero-value "unset" sentinel, exact by construction
		c.SacrificeFrac = 0.4
	}
	return c
}

// Validate reports whether the configuration can run.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch c.Policy {
	case PolicyRoundRobin, PolicyCoolestFirst:
	case PolicyVMTTA, PolicyVMTWA, PolicyVMTPreserve:
		if c.GV <= 0 {
			return fmt.Errorf("vmt: policy %s requires a positive GV", c.Policy)
		}
	default:
		return fmt.Errorf("vmt: unknown policy %q", c.Policy)
	}
	if c.Servers <= 0 {
		return fmt.Errorf("vmt: need a positive server count")
	}
	if c.Step <= 0 {
		return fmt.Errorf("vmt: need a positive step")
	}
	if c.PhysicsWorkers < 0 {
		return fmt.Errorf("vmt: negative physics worker count %d", c.PhysicsWorkers)
	}
	if err := c.Faults.ValidateFor(c.Servers); err != nil {
		return err
	}
	if c.CustomTrace != nil {
		if c.CustomTrace.Len() < 2 {
			return fmt.Errorf("vmt: custom trace needs at least two samples")
		}
		return nil
	}
	return c.Trace.Validate()
}

// Result holds the observables of one run, sampled once per Step.
type Result struct {
	// Config echoes the resolved configuration.
	Config Config
	// CoolingLoadW is the cluster cooling load over time — the series
	// behind Figures 13 and 16.
	CoolingLoadW *stats.Series
	// TotalPowerW is the aggregate electrical draw over time.
	TotalPowerW *stats.Series
	// MeanAirTempC is the fleet-average air temperature at the wax.
	MeanAirTempC *stats.Series
	// HotGroupTempC is the hot-group average air temperature (VMT
	// policies only; nil otherwise) — Figures 12 and 15.
	HotGroupTempC *stats.Series
	// HotGroupSize tracks the dynamic hot group (VMT policies only) —
	// the expansions visible in Figure 14.
	HotGroupSize *stats.Series
	// MeanMeltFrac is the fleet-average ground-truth melt fraction.
	MeanMeltFrac *stats.Series
	// WaxEnergyJ is the total latent+sensible energy currently parked
	// in wax, relative to the run start.
	WaxEnergyJ *stats.Series
	// MaxCPUTempC tracks the fleet's hottest estimated die
	// temperature; ThrottleMinutes counts sample periods during which
	// any server exceeded the CPU limit (must stay zero — the paper's
	// wax deployment is constrained to never throttle).
	MaxCPUTempC     *stats.Series
	ThrottleMinutes int
	// TaskArrivals and TaskDrops report the query-level load model's
	// totals (JobStream runs only); drops are the QoS failure the
	// paper attributes to undersized groups.
	TaskArrivals, TaskDrops uint64
	// FaultCrashes/FaultRepairs count injected server crashes and
	// completed repairs; EvacuatedJobs jobs re-placed off crashed
	// servers and LostJobs jobs dropped for lack of surviving
	// capacity. All zero without Config.Faults.
	FaultCrashes, FaultRepairs uint64
	EvacuatedJobs, LostJobs    uint64
	// AirTempGrid and MeltFracGrid are [sample][server] snapshots,
	// recorded only with Config.RecordGrids (Figures 9–11, 14).
	AirTempGrid  [][]float64
	MeltFracGrid [][]float64
}

// CoolingSummary reduces the cooling-load series.
func (r *Result) CoolingSummary() (cooling.Summary, error) {
	return cooling.Summarize(r.CoolingLoadW)
}

// PeakCoolingW returns the peak cooling load in watts.
func (r *Result) PeakCoolingW() float64 {
	peak, _, err := r.CoolingLoadW.Peak()
	if err != nil {
		return 0
	}
	return peak
}

// hotGrouper is implemented by the VMT schedulers.
type hotGrouper interface {
	HotGroupSize() int
}

// Run executes one simulation over the configured trace and returns
// the sampled result. Runs are deterministic: identical configurations
// produce identical results.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// reconciler is the per-tick scheduling surface Run drives: Reconcile
// advances the job population each period, and Evacuate clears a
// crashed server (fault injection). Both managers in internal/sched
// implement it.
type reconciler interface {
	Reconcile(time.Duration) error
	Evacuate(*cluster.Server) (moved, lost int, err error)
}

// RunCtx is Run with cancellation: when ctx is cancelled the engine
// stops at the next tick boundary and the run returns ctx.Err(). The
// result is still deterministic when it completes — cancellation can
// only abort a run, never change what a completed run returns.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	cfg = cfg.withDefaults().withDefaultObservability()

	cl, err := cluster.New(cluster.Config{
		NumServers:     cfg.Servers,
		Server:         cfg.Server,
		Material:       cfg.Material,
		InletTempC:     cfg.InletTempC,
		InletStdevC:    cfg.InletStdevC,
		Seed:           cfg.Seed,
		PhysicsWorkers: cfg.PhysicsWorkers,
	})
	if err != nil {
		return nil, err
	}
	scheduler, err := newScheduler(cfg, cl)
	if err != nil {
		return nil, err
	}
	tr := cfg.CustomTrace
	if tr == nil {
		// Cached: sweeps rerun the same spec hundreds of times, and
		// generated traces are immutable, so every run of a batch
		// shares one decode.
		tr, err = trace.Cached(cfg.Trace, cfg.Step)
		if err != nil {
			return nil, err
		}
	}
	var reconcile reconciler
	var stream *sched.StreamManager
	if cfg.JobStream {
		durations := cfg.TaskDurations
		if durations == nil {
			durations = sched.DefaultTaskDurations()
		}
		stream, err = sched.NewStreamManager(cl, cfg.Mix, tr, scheduler, durations, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if cfg.Metrics != nil {
			stream.SetMetrics(cfg.Metrics)
		}
		reconcile = stream
	} else {
		lm, err := sched.NewLoadManager(cl, cfg.Mix, tr, scheduler)
		if err != nil {
			return nil, err
		}
		if cfg.Metrics != nil {
			lm.SetMetrics(cfg.Metrics)
		}
		reconcile = lm
	}

	// Fault injection: the injector interposes sensors at construction
	// and ticks on the engine's fault band (after physics, before the
	// scheduler). Nil plan → nil injector → zero overhead.
	var injector *fault.Injector
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		injector = fault.NewInjector(cfg.Faults, cl, reconcile, cfg.Metrics)
	}

	// One sample lands per step over the trace; preallocating the
	// series keeps the sample phase free of append reallocations.
	nSamples := int(tr.Duration() / cfg.Step)
	res := &Result{
		Config:       cfg,
		CoolingLoadW: stats.NewSeriesCap(cfg.Step, nSamples),
		TotalPowerW:  stats.NewSeriesCap(cfg.Step, nSamples),
		MeanAirTempC: stats.NewSeriesCap(cfg.Step, nSamples),
		MeanMeltFrac: stats.NewSeriesCap(cfg.Step, nSamples),
		WaxEnergyJ:   stats.NewSeriesCap(cfg.Step, nSamples),
		MaxCPUTempC:  stats.NewSeriesCap(cfg.Step, nSamples),
	}
	grouper, hasGroups := scheduler.(hotGrouper)
	if hasGroups {
		res.HotGroupTempC = stats.NewSeriesCap(cfg.Step, nSamples)
		res.HotGroupSize = stats.NewSeriesCap(cfg.Step, nSamples)
	}

	eng := sim.NewEngine()
	eng.Instrument(cfg.Metrics)
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}

	// Tracing and band profiling: span wraps a phase handler so each
	// tick emits one span event with wall timings and the gauges args
	// samples at close, and (with ProfileBands) brackets the handler
	// with the band profiler so wall/alloc deltas land on the band
	// counters and the allocation delta rides on the span event. With a
	// nil tracer and no profiler the handler is returned untouched, so
	// the uninstrumented hot path is unchanged.
	tracer := cfg.Tracer
	var profiler *telemetry.BandProfiler
	if cfg.ProfileBands {
		profiler = telemetry.NewBandProfiler(cfg.Metrics) // nil registry → nil profiler
	}
	var wall0 time.Time
	if tracer != nil {
		wall0 = time.Now() //vmtlint:allow detrand observational: span wall-clock origin, never read by the simulation
	}
	span := func(name string, fn sim.Handler, args func() map[string]float64) sim.Handler {
		if tracer == nil && profiler == nil {
			return fn
		}
		band := profiler.Band(name) // nil profiler → nil band, whose methods no-op
		return func(now time.Duration) {
			var t0 time.Time
			if tracer != nil {
				t0 = time.Now() //vmtlint:allow detrand observational: span timing feeds the tracer only
			}
			band.Begin()
			fn(now)
			_, alloc := band.End()
			if tracer == nil {
				return
			}
			ev := telemetry.SpanEvent{
				Name:       name,
				At:         now,
				WallStart:  t0.Sub(wall0),
				Wall:       time.Since(t0), //vmtlint:allow detrand observational: span timing feeds the tracer only
				AllocBytes: alloc,
			}
			if args != nil {
				ev.Args = args()
			}
			tracer.Emit(ev)
		}
	}

	// Streaming series handles, resolved once so the sample band does
	// no map lookups. A nil Stream hands out nil series whose Observe
	// is a no-op — the unstreamed run pays one nil check per series.
	var (
		stCooling = cfg.Stream.Series("cooling_load_w")
		stPower   = cfg.Stream.Series("total_power_w")
		stAirTemp = cfg.Stream.Series("mean_air_temp_c")
		stMelt    = cfg.Stream.Series("mean_melt_frac")
		stMaxCPU  = cfg.Stream.Series("max_cpu_temp_c")
		stHotSize *telemetry.TimeSeries
	)
	if hasGroups {
		stHotSize = cfg.Stream.Series("hot_group_size")
	}

	// Thermal/PCM instruments, sampled in the metrics band: the fleet
	// melt-fraction distribution and accumulated server-seconds above
	// the wax's physical melting temperature.
	var (
		meltHist  = cfg.Metrics.Histogram("pcm_melt_frac", telemetry.LinearBounds(0, 1, 10)...)
		abovePMT  = cfg.Metrics.Counter("thermal_above_pmt_server_s")
		runTicks  = cfg.Metrics.Counter("run_ticks")
		settledG  = cfg.Metrics.Gauge("cluster_settled_servers")
		pmtC      = cfg.Material.MeltTempC
		stepSecs  = uint64(cfg.Step.Seconds())
		hasMetric = cfg.Metrics != nil
	)

	// Physics: advance the cluster by one period. Skipped at t=0 (no
	// elapsed time yet); the scheduler places the initial load first.
	var lastSample cluster.Sample
	if _, err := eng.Every(cfg.Step, cfg.Step, sim.PriorityModel, span("physics", func(time.Duration) {
		if runErr != nil {
			return
		}
		if done != nil {
			select {
			case <-done:
				fail(ctx.Err())
				return
			default:
			}
		}
		s, err := cl.Step(cfg.Step)
		if err != nil {
			fail(err)
			return
		}
		lastSample = s
	}, func() map[string]float64 {
		return map[string]float64{
			"cooling_load_w":  lastSample.CoolingLoadW,
			"mean_air_temp_c": lastSample.MeanAirTempC,
			"mean_melt_frac":  lastSample.MeanMeltFrac,
		}
	})); err != nil {
		return nil, err
	}

	// Faults: crashes, repairs, and stochastic draws land between the
	// physics settling and the scheduler's reaction, in server-ID
	// order on the engine's single goroutine. A crash scheduled at
	// at_min lands on the first fault tick at or after it.
	if injector != nil {
		if _, err := eng.Every(cfg.Step, cfg.Step, sim.PriorityFault, span("fault", func(now time.Duration) {
			if runErr != nil {
				return
			}
			if err := injector.Tick(now, cfg.Step); err != nil {
				fail(err)
			}
		}, nil)); err != nil {
			return nil, err
		}
	}

	// Scheduling: reconcile the job population with the trace.
	if _, err := eng.Every(0, cfg.Step, sim.PriorityScheduler, span("schedule", func(now time.Duration) {
		if runErr != nil {
			return
		}
		if err := reconcile.Reconcile(now); err != nil {
			fail(err)
		}
	}, func() map[string]float64 {
		args := map[string]float64{"total_power_w": lastSample.TotalPowerW}
		if hasGroups {
			args["hot_group_size"] = float64(grouper.HotGroupSize())
		}
		return args
	})); err != nil {
		return nil, err
	}

	// Metrics: sample the settled state each period (after the first
	// physics step so the series align with elapsed intervals).
	if _, err := eng.Every(cfg.Step, cfg.Step, sim.PriorityMetrics, span("sample", func(now time.Duration) {
		if runErr != nil {
			return
		}
		if hasMetric {
			runTicks.Inc()
			// How much of the fleet the physics memo is coasting
			// through — observational only, no control decisions.
			settledG.Set(float64(lastSample.SettledServers))
			for i, f := range lastSample.MeltFrac {
				meltHist.Observe(f)
				if lastSample.AirTempC[i] >= pmtC {
					abovePMT.Add(stepSecs)
				}
			}
		}
		res.CoolingLoadW.Append(lastSample.CoolingLoadW)
		res.TotalPowerW.Append(lastSample.TotalPowerW)
		res.MeanAirTempC.Append(lastSample.MeanAirTempC)
		res.MeanMeltFrac.Append(lastSample.MeanMeltFrac)
		res.MaxCPUTempC.Append(lastSample.MaxCPUTempC)
		if lastSample.ThrottlingServers > 0 {
			res.ThrottleMinutes++
		}
		// The cluster accumulates the fleet wax ledger during its own
		// reduction (same ID-order sum this loop used to run).
		res.WaxEnergyJ.Append(lastSample.WaxEnergyJ)
		if hasGroups {
			size := grouper.HotGroupSize()
			res.HotGroupSize.Append(float64(size))
			var sum float64
			for i := 0; i < size; i++ {
				sum += lastSample.AirTempC[i]
			}
			if size > 0 {
				res.HotGroupTempC.Append(sum / float64(size))
			} else {
				res.HotGroupTempC.Append(lastSample.MeanAirTempC)
			}
		}
		if cfg.RecordGrids {
			air := make([]float64, len(lastSample.AirTempC))
			copy(air, lastSample.AirTempC)
			melt := make([]float64, len(lastSample.MeltFrac))
			copy(melt, lastSample.MeltFrac)
			res.AirTempGrid = append(res.AirTempGrid, air)
			res.MeltFracGrid = append(res.MeltFracGrid, melt)
		}
		// Streamed telemetry: one observation per series per tick, fed
		// into the bounded-memory window samplers. Ticks are 1-based
		// (the first sample lands after one elapsed step).
		if cfg.Stream != nil || cfg.Fleet != nil {
			tick := int64(now / cfg.Step)
			stCooling.Observe(tick, lastSample.CoolingLoadW)
			stPower.Observe(tick, lastSample.TotalPowerW)
			stAirTemp.Observe(tick, lastSample.MeanAirTempC)
			stMelt.Observe(tick, lastSample.MeanMeltFrac)
			stMaxCPU.Observe(tick, lastSample.MaxCPUTempC)
			if hasGroups {
				stHotSize.Observe(tick, float64(grouper.HotGroupSize()))
			}
			if cfg.Fleet != nil {
				// A fresh immutable snapshot per tick: readers of the
				// live view may hold the previous one indefinitely.
				snap := &telemetry.FleetSnapshot{
					Tick:         tick,
					SimNS:        int64(now),
					CoolingLoadW: lastSample.CoolingLoadW,
					TotalPowerW:  lastSample.TotalPowerW,
					Servers:      make([]telemetry.ServerState, len(lastSample.AirTempC)),
				}
				hot := 0
				if hasGroups {
					hot = grouper.HotGroupSize()
				}
				for i := range snap.Servers {
					st := telemetry.ServerState{
						ID:       i,
						AirTempC: lastSample.AirTempC[i],
						MeltFrac: lastSample.MeltFrac[i],
						Crashed:  cl.Server(i).Failed(),
					}
					if hasGroups {
						if i < hot {
							st.Group = "hot"
						} else {
							st.Group = "cold"
						}
					}
					snap.Servers[i] = st
				}
				cfg.Fleet.Publish(snap)
			}
		}
	}, func() map[string]float64 {
		args := map[string]float64{"max_cpu_temp_c": lastSample.MaxCPUTempC}
		if n := res.WaxEnergyJ.Len(); n > 0 {
			args["wax_energy_j"] = res.WaxEnergyJ.Values[n-1]
		}
		return args
	})); err != nil {
		return nil, err
	}
	res.CoolingLoadW.Start = cfg.Step
	res.TotalPowerW.Start = cfg.Step
	res.MeanAirTempC.Start = cfg.Step
	res.MeanMeltFrac.Start = cfg.Step
	res.WaxEnergyJ.Start = cfg.Step
	res.MaxCPUTempC.Start = cfg.Step
	if hasGroups {
		res.HotGroupTempC.Start = cfg.Step
		res.HotGroupSize.Start = cfg.Step
	}

	if err := eng.RunUntil(tr.Duration()); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	// Seal trailing partial windows so the stream's sink holds the
	// complete run. Nil-safe.
	cfg.Stream.Flush()
	if stream != nil {
		res.TaskArrivals = stream.Arrived()
		res.TaskDrops = stream.Dropped()
	}
	if injector != nil {
		res.FaultCrashes = injector.Crashes()
		res.FaultRepairs = injector.Repairs()
		res.EvacuatedJobs = injector.Evacuated()
		res.LostJobs = injector.Lost()
	}
	return res, nil
}

// newScheduler instantiates the configured policy bound to cl.
func newScheduler(cfg Config, cl *cluster.Cluster) (sched.Scheduler, error) {
	coreCfg := core.Config{
		GV:                  cfg.GV,
		WaxThreshold:        cfg.WaxThreshold,
		OracleWaxState:      cfg.OracleWaxState,
		MigrationBudgetFrac: cfg.MigrationBudgetFrac,
		Metrics:             cfg.Metrics,
	}
	var (
		s   sched.Scheduler
		err error
	)
	switch cfg.Policy {
	case PolicyRoundRobin:
		s = sched.NewRoundRobin(cl)
	case PolicyCoolestFirst:
		s = sched.NewCoolestFirst(cl)
	case PolicyVMTTA:
		s, err = core.NewThermalAware(cl, coreCfg)
	case PolicyVMTWA:
		s, err = core.NewWaxAware(cl, coreCfg)
	case PolicyVMTPreserve:
		s, err = core.NewPreserving(cl, coreCfg, cfg.PreserveUntil, cfg.SacrificeFrac)
	default:
		return nil, fmt.Errorf("vmt: unknown policy %q", cfg.Policy)
	}
	if err != nil {
		return nil, err
	}
	if len(cfg.GVSchedule) > 0 {
		tunable, ok := s.(core.Tunable)
		if !ok {
			return nil, fmt.Errorf("vmt: policy %s does not support GV retuning", cfg.Policy)
		}
		schedule := make([]core.GVChange, len(cfg.GVSchedule))
		for i, ch := range cfg.GVSchedule {
			schedule[i] = core.GVChange{At: ch.At, GV: ch.GV}
		}
		return core.NewRetuning(tunable, schedule)
	}
	return s, nil
}
