// Package vmt reproduces "Virtual Melting Temperature: Managing Server
// Load to Minimize Cooling Overhead with Phase Change Materials"
// (Skach et al., ISCA 2018): a datacenter-scale simulation of servers
// carrying paraffin-wax phase change material, with thermal-aware
// (VMT-TA) and wax-aware (VMT-WA) job placement that concentrates hot
// jobs to melt wax — storing peak heat and shrinking the peak cooling
// load — even when cluster-average temperatures never reach the wax's
// physical melting point.
//
// The package is a facade over the internal subsystems (event-driven
// simulator, PCM model, thermal model, schedulers). Typical use:
//
//	res, err := vmt.Run(vmt.Scenario(100, vmt.PolicyVMTTA, 22))
//	fmt.Println(res.CoolingSummary())
//
// See the examples/ directory for complete programs and bench_test.go
// for the harness that regenerates every table and figure in the
// paper's evaluation.
package vmt

import (
	"context"
	"fmt"
	"time"

	"vmt/internal/cluster"
	"vmt/internal/cooling"
	"vmt/internal/core"
	"vmt/internal/fault"
	"vmt/internal/pcm"
	"vmt/internal/sched"
	"vmt/internal/stats"
	"vmt/internal/telemetry"
	"vmt/internal/thermal"
	"vmt/internal/trace"
	"vmt/internal/workload"
)

// Policy selects a job placement algorithm.
type Policy string

const (
	// PolicyRoundRobin is the prior TTS work's baseline scheduler.
	PolicyRoundRobin Policy = "round-robin"
	// PolicyCoolestFirst is the thermally balanced baseline.
	PolicyCoolestFirst Policy = "coolest-first"
	// PolicyVMTTA is VMT with thermal aware job placement.
	PolicyVMTTA Policy = "vmt-ta"
	// PolicyVMTWA is VMT with wax aware job placement.
	PolicyVMTWA Policy = "vmt-wa"
	// PolicyVMTPreserve is the reproduction's extension of the paper's
	// raise-the-melting-temperature idea (Section III): sacrifice part
	// of the hot group early to preserve wax for a hotter peak later.
	PolicyVMTPreserve Policy = "vmt-preserve"
)

// Config describes one cluster simulation run.
type Config struct {
	// Servers is the cluster size (the paper uses 1,000 for scale-out
	// results and 100 for parameter sweeps).
	Servers int
	// Policy selects the scheduler.
	Policy Policy
	// GV is the grouping value for the VMT policies (Equation 1);
	// ignored by the baselines.
	GV float64
	// WaxThreshold is VMT-WA's "fully melted" cutoff on the reported
	// melt fraction; unset selects the paper's 0.98.
	WaxThreshold Optional[float64]
	// OracleWaxState lets VMT-WA read ground-truth melt state instead
	// of the per-server estimator (ablation only).
	OracleWaxState bool
	// MigrationBudgetFrac caps VMT-WA's per-tick migrations as a
	// fraction of cluster cores; zero selects the default 0.25
	// (ablation knob).
	MigrationBudgetFrac float64
	// GVSchedule retunes the grouping value at the given times (VMT
	// policies only) — the day-ahead adaptive operation of Section
	// V-C. Entries must have strictly increasing times.
	GVSchedule []GVChange
	// PreserveUntil and SacrificeFrac configure PolicyVMTPreserve:
	// until PreserveUntil, hot load concentrates on SacrificeFrac of
	// the hot group so the rest keeps its wax solid for the later
	// peak. Unset values select hour 30 (after day one's peak) and 0.4.
	PreserveUntil time.Duration
	SacrificeFrac Optional[float64]
	// Server, Material: hardware and PCM; unset values select the
	// calibrated paper server and commercial 35.7 °C paraffin.
	Server   Optional[thermal.ServerSpec]
	Material Optional[pcm.Material]
	// InletTempC is the mean inlet temperature (unset → 22 °C) and
	// InletStdevC the per-server variation for Figures 19–20.
	InletTempC  Optional[float64]
	InletStdevC float64
	// Seed drives every stochastic element (inlet draw; trace noise
	// adds its own seed from the trace spec).
	Seed uint64
	// Trace is the load trace spec; zero value selects the paper's
	// two-day trace.
	Trace trace.Spec
	// CustomTrace overrides Trace with an externally supplied series
	// (see trace.FromReader) — the hook for production traces.
	CustomTrace *trace.Trace
	// Source, when non-nil, replaces the finite trace with a seeded
	// open-loop arrival generator (workload.SourceSpec: poisson,
	// bursty, flashcrowd). Generators are open-ended, so pair with
	// Horizon for batch runs; without one, only a stepped Session can
	// drive the run. Mutually exclusive with CustomTrace.
	Source *workload.SourceSpec
	// Horizon bounds the simulated duration. Zero selects the job
	// source's natural length: the trace duration for trace-driven
	// runs, open-ended for generator-driven ones.
	Horizon time.Duration
	// Mix is the workload mix; nil selects the five-workload paper
	// mix (≈60% hot).
	Mix *workload.Mix
	// Step is the scheduling/model period (zero → one minute, the
	// paper's wax-model update interval).
	Step time.Duration
	// PhysicsWorkers bounds the goroutines advancing per-server
	// physics inside each tick. Results are bit-identical for every
	// value (the per-server updates are independent and the
	// aggregation is a fixed-order sequential reduction); the knob
	// only trades goroutines for wall time. Zero picks automatically:
	// parallel for large clusters in a solo Run, serial inside RunMany
	// (whose workers already saturate the cores). Negative is invalid.
	PhysicsWorkers int
	// RecordGrids retains per-server, per-sample air temperature and
	// melt fraction (the heat-map figures). Costs O(servers×samples)
	// memory, so it defaults off.
	RecordGrids bool
	// JobStream switches task-like workloads (video, scanning,
	// clustering) from fluid reconciliation to discrete Poisson
	// arrivals with sampled durations — the query-level load model.
	// Arrivals that find no free core are dropped and counted in the
	// result. TaskDurations overrides the per-workload mean durations
	// (nil selects sched.DefaultTaskDurations).
	JobStream     bool
	TaskDurations map[string]time.Duration
	// Faults, when non-nil, injects deterministic failures: server
	// crashes/repairs (scheduled or stochastic) and melt-estimator
	// sensor faults. Part of the run's identity — the same seed and
	// plan reproduce the same Result bit for bit — so it participates
	// in the run-cache key. Nil injects nothing and leaves the hot
	// path untouched.
	Faults *fault.Plan
	// Metrics, when non-nil, receives run instrumentation: engine
	// dispatch counts and per-band wall time, scheduler placements and
	// hot-group resizes, the fleet melt-fraction histogram, and
	// time-above-PMT. Telemetry is strictly observational — results
	// are bit-identical with or without it. Safe to share one registry
	// across RunMany workers.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, receives one span event per simulation
	// phase per tick (physics, schedule, sample) with wall-clock
	// timings and key gauges; export via telemetry.Recorder as JSONL
	// or Chrome trace_event JSON. Nil disables tracing at (near) zero
	// cost.
	Tracer telemetry.Tracer
	// Stream, when non-nil, receives windowed time-series telemetry:
	// each sample tick feeds cooling_load_w, total_power_w,
	// mean_air_temp_c, mean_melt_frac, max_cpu_temp_c (and
	// hot_group_size for grouping policies) into bounded-memory
	// samplers that aggregate fixed windows of ticks into
	// min/max/mean/p99 and hand each sealed window to the stream's sink
	// the moment it closes — telemetry that is on disk while the run is
	// still going, with O(windows) memory regardless of run length.
	// Strictly observational, like Metrics and Tracer.
	Stream *telemetry.Stream
	// Fleet, when non-nil, receives one immutable FleetSnapshot per
	// sample tick: per-server air temperature, melt fraction, placement
	// group, and crash state. The publisher's atomic live view backs
	// the cliobs /fleet endpoint (scrape-safe mid-run); its optional
	// sink writes the NDJSON fleet log vmtdiff replays to find the
	// first divergent tick between two runs. Strictly observational.
	Fleet *telemetry.FleetPublisher
	// ProfileBands, when true and Metrics is set, profiles each engine
	// band (physics, fault, schedule, sample): wall time and heap
	// allocation deltas land on band_wall_ns_*/band_alloc_bytes_*/
	// band_spans_* counters, with the profiler's own cost separated
	// into profiler_self_ns, and allocation deltas attach to trace
	// spans (Chrome trace counter tracks). Strictly observational.
	ProfileBands bool
}

// Scenario returns a ready-to-run paper configuration for the given
// cluster size, policy, and GV.
func Scenario(servers int, policy Policy, gv float64) Config {
	return Config{Servers: servers, Policy: policy, GV: gv}
}

// BaselineScenario returns the round-robin reference configuration
// every study measures against: the given cluster size under the prior
// TTS work's baseline scheduler, no grouping value. Centralizing the
// construction keeps the baseline semantics in one place (and makes
// the shared-baseline run deduplication of the experiment engine easy
// to see at call sites).
func BaselineScenario(servers int) Config {
	return Scenario(servers, PolicyRoundRobin, 0)
}

// withDefaults resolves zero values to the paper's configuration.
func (c Config) withDefaults() Config {
	if !c.Server.IsSet() {
		c.Server = Some(thermal.PaperServer())
	}
	if !c.Material.IsSet() {
		c.Material = Some(pcm.CommercialParaffin())
	}
	if !c.InletTempC.IsSet() {
		c.InletTempC = Some(22.0)
	}
	if !c.WaxThreshold.IsSet() {
		c.WaxThreshold = Some(core.DefaultWaxThreshold)
	}
	if c.Trace.Days == 0 {
		c.Trace = trace.PaperTwoDay()
	}
	if c.Mix == nil {
		c.Mix = workload.PaperMix()
	}
	if c.Step == 0 {
		c.Step = time.Minute
	}
	if c.PreserveUntil == 0 {
		c.PreserveUntil = 30 * time.Hour // past day one's peak and trough
	}
	if !c.SacrificeFrac.IsSet() {
		c.SacrificeFrac = Some(0.4)
	}
	return c
}

// Validate reports whether the configuration can run.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch c.Policy {
	case PolicyRoundRobin, PolicyCoolestFirst:
	case PolicyVMTTA, PolicyVMTWA, PolicyVMTPreserve:
		if c.GV <= 0 {
			return fmt.Errorf("vmt: policy %s requires a positive GV", c.Policy)
		}
	default:
		return fmt.Errorf("vmt: unknown policy %q", c.Policy)
	}
	if c.Servers <= 0 {
		return fmt.Errorf("vmt: need a positive server count")
	}
	if c.Step <= 0 {
		return fmt.Errorf("vmt: need a positive step")
	}
	if c.PhysicsWorkers < 0 {
		return fmt.Errorf("vmt: negative physics worker count %d", c.PhysicsWorkers)
	}
	if err := c.Faults.ValidateFor(c.Servers); err != nil {
		return err
	}
	if c.Horizon < 0 {
		return fmt.Errorf("vmt: negative horizon %v", c.Horizon)
	}
	if c.Source != nil {
		if c.CustomTrace != nil {
			return fmt.Errorf("vmt: Source and CustomTrace are mutually exclusive")
		}
		return c.Source.Validate()
	}
	if c.CustomTrace != nil {
		if c.CustomTrace.Len() < 2 {
			return fmt.Errorf("vmt: custom trace needs at least two samples")
		}
		return nil
	}
	return c.Trace.Validate()
}

// Result holds the observables of one run, sampled once per Step.
type Result struct {
	// Config echoes the resolved configuration.
	Config Config
	// CoolingLoadW is the cluster cooling load over time — the series
	// behind Figures 13 and 16.
	CoolingLoadW *stats.Series
	// TotalPowerW is the aggregate electrical draw over time.
	TotalPowerW *stats.Series
	// MeanAirTempC is the fleet-average air temperature at the wax.
	MeanAirTempC *stats.Series
	// HotGroupTempC is the hot-group average air temperature (VMT
	// policies only; nil otherwise) — Figures 12 and 15.
	HotGroupTempC *stats.Series
	// HotGroupSize tracks the dynamic hot group (VMT policies only) —
	// the expansions visible in Figure 14.
	HotGroupSize *stats.Series
	// MeanMeltFrac is the fleet-average ground-truth melt fraction.
	MeanMeltFrac *stats.Series
	// WaxEnergyJ is the total latent+sensible energy currently parked
	// in wax, relative to the run start.
	WaxEnergyJ *stats.Series
	// MaxCPUTempC tracks the fleet's hottest estimated die
	// temperature; ThrottleMinutes counts sample periods during which
	// any server exceeded the CPU limit (must stay zero — the paper's
	// wax deployment is constrained to never throttle).
	MaxCPUTempC     *stats.Series
	ThrottleMinutes int
	// TaskArrivals and TaskDrops report the query-level load model's
	// totals (JobStream runs only); drops are the QoS failure the
	// paper attributes to undersized groups.
	TaskArrivals, TaskDrops uint64
	// FaultCrashes/FaultRepairs count injected server crashes and
	// completed repairs; EvacuatedJobs jobs re-placed off crashed
	// servers and LostJobs jobs dropped for lack of surviving
	// capacity. All zero without Config.Faults.
	FaultCrashes, FaultRepairs uint64
	EvacuatedJobs, LostJobs    uint64
	// DomainTrips counts correlated failure-domain activations (PDU
	// trips, cooling-zone failures); ReportsQuarantined counts
	// defense-layer quarantine transitions of servers whose telemetry
	// failed the plausibility cross-checks. Zero without Config.Faults.
	DomainTrips        uint64
	ReportsQuarantined uint64
	// AirTempGrid and MeltFracGrid are [sample][server] snapshots,
	// recorded only with Config.RecordGrids (Figures 9–11, 14).
	AirTempGrid  [][]float64
	MeltFracGrid [][]float64
}

// CoolingSummary reduces the cooling-load series.
func (r *Result) CoolingSummary() (cooling.Summary, error) {
	return cooling.Summarize(r.CoolingLoadW)
}

// PeakCoolingW returns the peak cooling load in watts.
func (r *Result) PeakCoolingW() float64 {
	peak, _, err := r.CoolingLoadW.Peak()
	if err != nil {
		return 0
	}
	return peak
}

// hotGrouper is implemented by the VMT schedulers.
type hotGrouper interface {
	HotGroupSize() int
}

// Run executes one simulation over the configured trace and returns
// the sampled result. Runs are deterministic: identical configurations
// produce identical results.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// reconciler is the per-tick scheduling surface Run drives: Reconcile
// advances the job population each period, and Evacuate clears a
// crashed server (fault injection). Both managers in internal/sched
// implement it.
type reconciler interface {
	Reconcile(time.Duration) error
	Evacuate(*cluster.Server) (moved, lost int, err error)
}

// RunCtx is Run with cancellation: when ctx is cancelled the engine
// stops at the next tick boundary and the run returns ctx.Err(). The
// result is still deterministic when it completes — cancellation can
// only abort a run, never change what a completed run returns.
//
// RunCtx is a thin wrapper over Session: it opens one, steps it to
// the horizon in a single engine pass, and closes it — so batch runs
// and stepped sessions share every line of the pipeline, and the
// wrapper adds no per-tick work.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	s, err := OpenCtx(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.StepAll(); err != nil {
		s.Close()
		return nil, err
	}
	res, err := s.Close()
	if err != nil {
		return nil, err
	}
	return res, nil
}

// newScheduler instantiates the configured policy bound to cl.
func newScheduler(cfg Config, cl *cluster.Cluster) (sched.Scheduler, error) {
	coreCfg := core.Config{
		GV:                  cfg.GV,
		WaxThreshold:        cfg.WaxThreshold.Value(),
		OracleWaxState:      cfg.OracleWaxState,
		MigrationBudgetFrac: cfg.MigrationBudgetFrac,
		Metrics:             cfg.Metrics,
	}
	var (
		s   sched.Scheduler
		err error
	)
	switch cfg.Policy {
	case PolicyRoundRobin:
		s = sched.NewRoundRobin(cl)
	case PolicyCoolestFirst:
		s = sched.NewCoolestFirst(cl)
	case PolicyVMTTA:
		s, err = core.NewThermalAware(cl, coreCfg)
	case PolicyVMTWA:
		s, err = core.NewWaxAware(cl, coreCfg)
	case PolicyVMTPreserve:
		s, err = core.NewPreserving(cl, coreCfg, cfg.PreserveUntil, cfg.SacrificeFrac.Value())
	default:
		return nil, fmt.Errorf("vmt: unknown policy %q", cfg.Policy)
	}
	if err != nil {
		return nil, err
	}
	if len(cfg.GVSchedule) > 0 {
		tunable, ok := s.(core.Tunable)
		if !ok {
			return nil, fmt.Errorf("vmt: policy %s does not support GV retuning", cfg.Policy)
		}
		schedule := make([]core.GVChange, len(cfg.GVSchedule))
		for i, ch := range cfg.GVSchedule {
			schedule[i] = core.GVChange{At: ch.At, GV: ch.GV}
		}
		return core.NewRetuning(tunable, schedule)
	}
	return s, nil
}
