package vmt

import "testing"

func TestAdaptabilityValidation(t *testing.T) {
	if _, err := AmbientSweep(10, nil, DefaultGVGrid()); err == nil {
		t.Fatal("empty inlets should fail")
	}
	if _, err := AmbientSweep(10, []float64{22}, nil); err == nil {
		t.Fatal("empty grid should fail")
	}
	if _, err := DriftSweep(10, nil, DefaultGVGrid()); err == nil {
		t.Fatal("empty scales should fail")
	}
	if _, err := DriftSweep(10, []float64{1.5}, nil); err == nil {
		t.Fatal("empty grid should fail")
	}
}

// The season-to-season motivation: fixed wax is useless across the
// cool ambient band where VMT extracts double-digit reductions, and
// retuned VMT never does meaningfully worse than TTS anywhere.
func TestAmbientSweepMotivation(t *testing.T) {
	if testing.Short() {
		t.Skip("many full cluster runs")
	}
	pts, err := AmbientSweep(100, []float64{20, 22, 24, 26}, DefaultGVGrid())
	if err != nil {
		t.Fatal(err)
	}
	byInlet := map[float64]AdaptabilityPoint{}
	for _, p := range pts {
		byInlet[p.Condition] = p
	}
	// Cool ambient: TTS dead, VMT strong.
	for _, inlet := range []float64{20.0, 22.0} {
		p := byInlet[inlet]
		if p.TTSReductionPct > 1 {
			t.Errorf("inlet %v: TTS %.1f%% should be ≈0", inlet, p.TTSReductionPct)
		}
		if p.VMTReductionPct < 7 {
			t.Errorf("inlet %v: VMT %.1f%% should be large", inlet, p.VMTReductionPct)
		}
	}
	// VMT never loses to TTS by more than noise, at any ambient.
	for _, p := range pts {
		if p.VMTReductionPct < p.TTSReductionPct-1 {
			t.Errorf("inlet %v: VMT %.1f%% below TTS %.1f%%",
				p.Condition, p.VMTReductionPct, p.TTSReductionPct)
		}
	}
	// The retuned GV moves with ambient (adaptation is real): warmer
	// rooms need bigger (cooler) hot groups.
	if !(byInlet[24].BestGV > byInlet[22].BestGV) {
		t.Errorf("best GV should grow with ambient: %v at 22 vs %v at 24",
			byInlet[22].BestGV, byInlet[24].BestGV)
	}
}

// The lifetime-drift motivation: as workload power drifts down, fixed
// wax strands, while VMT retunes and keeps melting.
func TestDriftSweepMotivation(t *testing.T) {
	if testing.Short() {
		t.Skip("many full cluster runs")
	}
	pts, err := DriftSweep(100, []float64{1.3, 1.5, 1.7}, DefaultGVGrid())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.VMTReductionPct < p.TTSReductionPct-1 {
			t.Errorf("scale %v: VMT %.1f%% below TTS %.1f%%",
				p.Condition, p.VMTReductionPct, p.TTSReductionPct)
		}
	}
	// At the low-power end TTS is dead but VMT is not.
	low := pts[0]
	if low.TTSReductionPct > 1 {
		t.Errorf("low-power TTS %.1f%% should be ≈0", low.TTSReductionPct)
	}
	if low.VMTReductionPct < 5 {
		t.Errorf("low-power VMT %.1f%% should remain substantial", low.VMTReductionPct)
	}
	// GV rises as power rises.
	if !(pts[len(pts)-1].BestGV > pts[0].BestGV) {
		t.Errorf("best GV should rise with power: %v -> %v",
			pts[0].BestGV, pts[len(pts)-1].BestGV)
	}
}

func TestDefaultGVGrid(t *testing.T) {
	grid := DefaultGVGrid()
	if len(grid) < 5 {
		t.Fatal("grid too small")
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] <= grid[i-1] {
			t.Fatal("grid must be increasing")
		}
	}
	if grid[len(grid)-1] != 35.7 {
		t.Fatal("grid must include the degenerate whole-cluster GV")
	}
}
