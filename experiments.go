package vmt

import (
	"fmt"
	"math"
	"time"

	"vmt/internal/cooling"
	"vmt/internal/experiment"
	"vmt/internal/feasibility"
	"vmt/internal/pcm"
	"vmt/internal/qos"
	"vmt/internal/reliability"
	"vmt/internal/stats"
	"vmt/internal/tco"
	"vmt/internal/workload"
)

// This file hosts the experiment harness: one entry point per table
// and figure of the paper's evaluation, each returning plain data that
// cmd/vmtreport renders and bench_test.go regenerates.

// PeakReductionPct runs the policy and returns its peak cooling-load
// reduction against a round-robin baseline on an otherwise identical
// configuration.
func PeakReductionPct(cfg Config) (float64, error) {
	base := cfg
	base.Policy = PolicyRoundRobin
	baseline, err := Run(base)
	if err != nil {
		return 0, err
	}
	res, err := Run(cfg)
	if err != nil {
		return 0, err
	}
	return cooling.PeakReductionPct(baseline.CoolingLoadW, res.CoolingLoadW)
}

// GVSweepPoint is one sample of the Figure 18 sweep.
type GVSweepPoint struct {
	GV           float64
	ReductionPct float64
}

// GVSweep reproduces the Figure 18 axis: peak cooling load reduction
// versus GV for one policy, against a shared round-robin baseline. The
// points run concurrently via RunMany, so a batch tracer sees one
// tagged run per sweep point (run 0 is the baseline).
func GVSweep(servers int, policy Policy, gvs []float64) ([]GVSweepPoint, error) {
	return GVSweepOpts(servers, policy, gvs, BatchOptions{})
}

// GVSweepOpts is GVSweep with batch options: a worker bound for the
// concurrent points and an optional progress writer for long sweeps.
func GVSweepOpts(servers int, policy Policy, gvs []float64, opts BatchOptions) ([]GVSweepPoint, error) {
	sr, err := RunSpecResults(GVSweepSpec(servers, policy, gvs), opts)
	if err != nil {
		return nil, err
	}
	baseline := sr.Baselines[0]
	out := make([]GVSweepPoint, 0, len(gvs))
	for i, gv := range gvs {
		red, err := cooling.PeakReductionPct(baseline.CoolingLoadW, sr.Results[i].CoolingLoadW)
		if err != nil {
			return nil, err
		}
		out = append(out, GVSweepPoint{GV: gv, ReductionPct: red})
	}
	return out, nil
}

// ThresholdSweepPoint is one sample of the Figure 17 sweep.
type ThresholdSweepPoint struct {
	WaxThreshold float64
	ReductionPct float64
}

// WaxThresholdSweep reproduces Figure 17: VMT-WA peak reduction as the
// wax threshold varies (paper: 100 servers, GV=22, thresholds 0.85–1).
func WaxThresholdSweep(servers int, gv float64, thresholds []float64) ([]ThresholdSweepPoint, error) {
	return WaxThresholdSweepOpts(servers, gv, thresholds, BatchOptions{})
}

// WaxThresholdSweepOpts is WaxThresholdSweep with batch options.
func WaxThresholdSweepOpts(servers int, gv float64, thresholds []float64, opts BatchOptions) ([]ThresholdSweepPoint, error) {
	sr, err := RunSpecResults(WaxThresholdSweepSpec(servers, gv, thresholds), opts)
	if err != nil {
		return nil, err
	}
	baseline := sr.Baselines[0]
	out := make([]ThresholdSweepPoint, 0, len(thresholds))
	for i, th := range thresholds {
		red, err := cooling.PeakReductionPct(baseline.CoolingLoadW, sr.Results[i].CoolingLoadW)
		if err != nil {
			return nil, err
		}
		out = append(out, ThresholdSweepPoint{WaxThreshold: th, ReductionPct: red})
	}
	return out, nil
}

// InletVariationPoint is one sample of the Figure 19/20 sweeps.
type InletVariationPoint struct {
	GV           float64
	StdevC       float64
	ReductionPct float64 // mean over the runs
}

// InletVariationStudy reproduces Figures 19 and 20: peak reduction
// versus GV under normally distributed inlet temperature variation,
// averaged over runs seeded differently (the paper averages 5 runs of
// 100 servers).
func InletVariationStudy(servers int, policy Policy, gvs, stdevs []float64, runs int) ([]InletVariationPoint, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("vmt: need at least one run")
	}
	if len(stdevs) == 0 || len(gvs) == 0 {
		return nil, nil
	}
	// The grid expands stdev-outer, gv, seed-fastest, and the baseline
	// varies with (stdev, seed) only — one baseline per inlet draw,
	// shared across the GV axis. The seed-order accumulation below
	// reproduces the original sequential sums exactly.
	sr, err := RunSpecResults(InletVariationSpec(servers, policy, gvs, stdevs, runs), BatchOptions{})
	if err != nil {
		return nil, err
	}
	var out []InletVariationPoint
	for si, sd := range stdevs {
		for gi, gv := range gvs {
			var sum float64
			for r := 0; r < runs; r++ {
				i := (si*len(gvs)+gi)*runs + r
				red, err := cooling.PeakReductionPct(sr.BaselineFor(i).CoolingLoadW, sr.Results[i].CoolingLoadW)
				if err != nil {
					return nil, err
				}
				sum += red
			}
			out = append(out, InletVariationPoint{GV: gv, StdevC: sd, ReductionPct: sum / float64(runs)})
		}
	}
	return out, nil
}

// GVMappingRow is one row of the Table II reproduction.
type GVMappingRow struct {
	GV float64
	// VMTTempC is the virtual melting temperature: the physical
	// melting point a passive TTS deployment would have needed for
	// its wax to begin melting at the same time VMT-TA(GV) begins
	// melting (onset equivalence).
	VMTTempC float64
	// DeltaPMTC is VMTTempC − the physical 35.7 °C.
	DeltaPMTC float64
	// Melts reports whether this GV melted any wax at all within the
	// trace; rows with Melts=false have no finite VMT.
	Melts bool
}

// GVMapping experimentally derives the GV → virtual-melting-temperature
// mapping (Table II) for the test datacenter. For each GV it runs
// VMT-TA, finds the first instant wax melts, and reads the virtual
// melting temperature off the round-robin cluster's mean air
// temperature at that instant — the PMT a passive deployment would
// have needed to start storing heat at the same time.
//
// Note on direction: with Equation 1 as printed (hot group grows with
// GV), larger GVs give cooler hot groups, later onsets, and therefore
// *higher* virtual melting temperatures; the printed Table II runs the
// opposite way, which is only consistent if its GV column sizes the
// cold group. See EXPERIMENTS.md for the full discussion.
func GVMapping(servers int, gvs []float64) ([]GVMappingRow, error) {
	// One batch: the baseline plus every GV point. Each run is
	// deterministic, so the concurrent batch returns exactly what the
	// sequential loop produced (and shares the decoded trace and
	// material tables across points).
	cfgs := make([]Config, 0, len(gvs)+1)
	cfgs = append(cfgs, BaselineScenario(servers))
	for _, gv := range gvs {
		cfgs = append(cfgs, Scenario(servers, PolicyVMTTA, gv))
	}
	runs, err := RunMany(cfgs)
	if err != nil {
		return nil, err
	}
	baseline := runs[0]
	rows := make([]GVMappingRow, 0, len(gvs))
	for k, gv := range gvs {
		res := runs[k+1]
		row := GVMappingRow{GV: gv}
		for i, frac := range res.MeanMeltFrac.Values {
			if frac > 1e-4 {
				row.Melts = true
				row.VMTTempC = baseline.MeanAirTempC.Values[i]
				row.DeltaPMTC = row.VMTTempC - res.Config.Material.Value().MeltTempC
				break
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FeasibilityPanel is one Figure 1 panel.
type FeasibilityPanel struct {
	Name   string
	Points []feasibility.Point
}

// FeasibilityMap reproduces Figure 1: the six pairwise-mix panels
// classified into VMT/TTS, Needs VMT, and Neither bands.
func FeasibilityMap(stepPct float64) ([]FeasibilityPanel, error) {
	params := feasibility.PaperParams()
	var out []FeasibilityPanel
	for _, pair := range feasibility.PaperPairs() {
		pts, err := params.Sweep(pair.A, pair.B, stepPct)
		if err != nil {
			return nil, err
		}
		out = append(out, FeasibilityPanel{Name: pair.Name, Points: pts})
	}
	return out, nil
}

// ColocationStudy reproduces Figure 6: the caching and search latency
// curves under colocation.
func ColocationStudy() ([]qos.CachingPoint, []qos.SearchPoint, error) {
	f := qos.PaperFixture()
	caching, err := f.CachingCurves(nil)
	if err != nil {
		return nil, nil, err
	}
	search, err := f.SearchCurves(nil)
	if err != nil {
		return nil, nil, err
	}
	return caching, search, nil
}

// ReliabilityStudy reproduces Figure 7. It runs a short VMT-WA
// simulation to extract representative hot-group, cold-group, and
// fleet-mean temperatures, then evaluates the MTBF model over 6- and
// 36-month horizons under the paper's 20%/month rotation.
func ReliabilityStudy(servers int, gv float64) (sixMo, threeYr reliability.Comparison, err error) {
	res, err := Run(Scenario(servers, PolicyVMTWA, gv))
	if err != nil {
		return
	}
	hot := res.HotGroupTempC.Mean()
	mean := res.MeanAirTempC.Mean()
	// Cold-group mean follows from the fleet decomposition:
	// mean = f·hot + (1−f)·cold with f the average hot-group share.
	f := res.HotGroupSize.Mean() / float64(servers)
	cold := (mean - f*hot) / (1 - f)
	model := reliability.PaperModel()
	rot := reliability.PaperRotation(hot, cold)
	if sixMo, err = reliability.Compare(model, mean, rot, 6); err != nil {
		return
	}
	threeYr, err = reliability.Compare(model, mean, rot, 36)
	return
}

// TCOStudy reproduces the Section V-E analysis for a measured peak
// cooling reduction: the full-reduction and conservative outcomes plus
// the n-paraffin counterfactual.
type TCOStudy struct {
	Params          tco.Params
	Best            tco.Outcome
	Conservative    tco.Outcome
	NParaffinUSD    float64
	CommercialUSD   float64
	ConservativePct float64
}

// RunTCOStudy evaluates the cooling-oversubscription economics at the
// given measured reduction, with the paper's conservative 6% variant.
func RunTCOStudy(reductionPct float64) (TCOStudy, error) {
	p := tco.PaperParams()
	best, err := tco.Evaluate(p, reductionPct)
	if err != nil {
		return TCOStudy{}, err
	}
	const conservative = 6.0
	cons, err := tco.Evaluate(p, conservative)
	if err != nil {
		return TCOStudy{}, err
	}
	nCost, err := tco.NParaffinAlternativeCostUSD(p, 30)
	if err != nil {
		return TCOStudy{}, err
	}
	return TCOStudy{
		Params:          p,
		Best:            best,
		Conservative:    cons,
		NParaffinUSD:    nCost,
		CommercialUSD:   p.WaxDeploymentCostUSD(),
		ConservativePct: conservative,
	}, nil
}

// TableIRows returns the workload catalog in the paper's format.
func TableIRows() []workload.Workload { return workload.TableI() }

// CoolingLoadStudy bundles the Figure 13/16 content: the baseline and
// per-GV cooling-load series plus the peak-reduction bar values.
type CoolingLoadStudy struct {
	Servers  int
	Policy   Policy
	Baseline *stats.Series // round robin
	Coolest  *stats.Series // coolest first
	// ByGV is keyed by the caller's GV sweep values, copied verbatim.
	ByGV       map[float64]*stats.Series //vmtlint:allow floatkey keys are verbatim copies of the gvs slice, never computed
	Reductions map[string]float64        // bar chart: name → percent
}

// RunCoolingLoadStudy regenerates Figure 13 (policy=VMTTA) or Figure 16
// (policy=VMTWA): cooling-load series for round robin, coolest first,
// and the policy at each GV, plus peak reductions relative to round
// robin.
func RunCoolingLoadStudy(servers int, policy Policy, gvs []float64) (*CoolingLoadStudy, error) {
	sr, err := RunSpecResults(CoolingLoadSpec(servers, policy, gvs), BatchOptions{})
	if err != nil {
		return nil, err
	}
	rr := sr.Baselines[0]
	cf := sr.Results[0] // case "cf" leads the variant axis
	study := &CoolingLoadStudy{
		Servers:    servers,
		Policy:     policy,
		Baseline:   rr.CoolingLoadW,
		Coolest:    cf.CoolingLoadW,
		ByGV:       make(map[float64]*stats.Series), //vmtlint:allow floatkey keys are verbatim copies of the gvs slice, never computed
		Reductions: make(map[string]float64),
	}
	redCF, err := cooling.PeakReductionPct(rr.CoolingLoadW, cf.CoolingLoadW)
	if err != nil {
		return nil, err
	}
	study.Reductions["Round Robin"] = 0
	study.Reductions["Coolest First"] = redCF
	for i, gv := range gvs {
		res := sr.Results[i+1]
		study.ByGV[gv] = res.CoolingLoadW
		red, err := cooling.PeakReductionPct(rr.CoolingLoadW, res.CoolingLoadW)
		if err != nil {
			return nil, err
		}
		study.Reductions[fmt.Sprintf("GV=%g", gv)] = red
	}
	return study, nil
}

// HeatmapStudy bundles one of the Figures 9–11/14 heat-map pairs.
type HeatmapStudy struct {
	Policy Policy
	GV     float64
	// AirTempGrid and MeltFracGrid are [sample][server].
	AirTempGrid, MeltFracGrid [][]float64
	Step                      time.Duration
}

// RunHeatmapStudy records the per-server air temperature and wax state
// grids for one policy on the paper's 100-server sub-cluster.
func RunHeatmapStudy(servers int, policy Policy, gv float64) (*HeatmapStudy, error) {
	cfg := Scenario(servers, policy, gv)
	cfg.RecordGrids = true
	res, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	return &HeatmapStudy{
		Policy:       policy,
		GV:           gv,
		AirTempGrid:  res.AirTempGrid,
		MeltFracGrid: res.MeltFracGrid,
		Step:         res.Config.Step,
	}, nil
}

// FusionMappingRow is one row of the fusion-scaled Table II
// derivation.
type FusionMappingRow struct {
	// DeltaPMTC and PMTC describe the swept physical melting point.
	DeltaPMTC, PMTC float64
	// GV is the grouping value whose VMT-TA run best matches the
	// swept-PMT TTS run on peak stored wax energy; TTSEnergyMJ and
	// VMTEnergyMJ are the two matched peaks.
	GV                       float64
	TTSEnergyMJ, VMTEnergyMJ float64
}

// GVMappingFusion derives the Table II mapping by the paper's literal
// procedure: sweep the physical melting temperature above and below
// 35.7 °C with the heat of fusion scaled to the hot group's storage
// (fusion × GV/PMT, the hot-group fraction), run passive TTS with that
// hypothetical wax, and find the GV whose VMT-TA deployment of the
// *real* wax stores the closest peak wax energy — the thermal battery
// the two systems must match for equivalent behavior.
func GVMappingFusion(servers int, deltas, gvGrid []float64) ([]FusionMappingRow, error) {
	if len(deltas) == 0 || len(gvGrid) == 0 {
		return nil, fmt.Errorf("vmt: need PMT deltas and a GV grid")
	}
	peakEnergyMJ := func(res *Result) float64 {
		e, _, err := res.WaxEnergyJ.Peak()
		if err != nil {
			return 0
		}
		return e / 1e6
	}
	// VMT-TA stored-energy peaks across the grid, computed once.
	vmtEnergy := make([]float64, len(gvGrid))
	for i, gv := range gvGrid {
		res, err := Run(Scenario(servers, PolicyVMTTA, gv))
		if err != nil {
			return nil, err
		}
		vmtEnergy[i] = peakEnergyMJ(res)
	}
	mat := pcm.CommercialParaffin()
	rows := make([]FusionMappingRow, 0, len(deltas))
	for _, delta := range deltas {
		pmt := mat.MeltTempC + delta
		bestRow := FusionMappingRow{DeltaPMTC: delta, PMTC: pmt}
		bestGap := math.Inf(1)
		for i, gv := range gvGrid {
			// Hypothetical wax: swept PMT, fusion scaled to the hot
			// group's share of the fleet's storage.
			frac := gv / mat.MeltTempC
			if frac > 1 {
				frac = 1
			}
			cfg := BaselineScenario(servers)
			cfg.Material = Some(mat.WithMeltTemp(pmt).
				WithLatentHeat(mat.LatentHeatJPerKg * frac))
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			ttsE := peakEnergyMJ(res)
			if gap := math.Abs(ttsE - vmtEnergy[i]); gap < bestGap {
				bestGap = gap
				bestRow.GV = gv
				bestRow.TTSEnergyMJ = ttsE
				bestRow.VMTEnergyMJ = vmtEnergy[i]
			}
		}
		rows = append(rows, bestRow)
	}
	return rows, nil
}

// FaultStudyRow is one (failure rate, policy) sample of the fault
// study.
type FaultStudyRow struct {
	RatePerHour float64
	Policy      Policy
	// ReductionPct is the peak cooling reduction against a round-robin
	// baseline experiencing the same injected fault plan.
	ReductionPct float64
	// DropPct is the share of task arrivals dropped — the QoS
	// degradation the paper warns undersized groups cause, here
	// aggravated by evacuations racing a shrunken fleet.
	DropPct       float64
	Crashes       uint64
	EvacuatedJobs uint64
	LostJobs      uint64
}

// RunFaultStudy measures how gracefully each VMT policy degrades under
// injected stochastic server crashes: peak cooling reduction against a
// round-robin baseline suffering the same fault plan, plus the
// query-level QoS cost (dropped arrivals) and the injected-fault
// totals. rates are failures per server-hour; rate 0 is the fault-free
// reference row.
func RunFaultStudy(servers int, rates []float64, gv float64, seed uint64) ([]FaultStudyRow, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("vmt: need failure rates")
	}
	sr, err := RunSpecResults(FaultStudySpec(servers, rates, gv, seed), BatchOptions{})
	if err != nil {
		return nil, err
	}
	policies := []Policy{PolicyVMTTA, PolicyVMTWA}
	rows := make([]FaultStudyRow, 0, len(rates)*len(policies))
	for ri, rate := range rates {
		for pi, pol := range policies {
			i := ri*len(policies) + pi
			res := sr.Results[i]
			red, err := cooling.PeakReductionPct(sr.BaselineFor(i).CoolingLoadW, res.CoolingLoadW)
			if err != nil {
				return nil, err
			}
			row := FaultStudyRow{
				RatePerHour:   rate,
				Policy:        pol,
				ReductionPct:  red,
				Crashes:       res.FaultCrashes,
				EvacuatedJobs: res.EvacuatedJobs,
				LostJobs:      res.LostJobs,
			}
			if res.TaskArrivals > 0 {
				row.DropPct = float64(res.TaskDrops) / float64(res.TaskArrivals) * 100
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// CorrelatedFaultRow is one (correlation degree, policy) sample of
// the correlated fault study.
type CorrelatedFaultRow struct {
	// Correlation names the fault shape: none, independent, rack,
	// zone-derate, stochastic-rack, byzantine, rack-byzantine.
	Correlation string
	Policy      Policy
	// ReductionPct is the peak cooling reduction against a round-robin
	// baseline suffering the identical fault plan.
	ReductionPct float64
	// DropPct is the share of task arrivals dropped.
	DropPct            float64
	Crashes            uint64
	DomainTrips        uint64
	LostJobs           uint64
	ReportsQuarantined uint64
}

// RunCorrelatedFaultStudy measures where the paper's peak reduction
// holds or collapses when failures are correlated (rack-atomic PDU
// trips, cooling-zone derates) or the schedulers are fed Byzantine
// utilization/melt reports — the robustness counterpart of
// RunFaultStudy's independent-crash model. Every policy at a given
// correlation degree faces the identical injected history, and the
// round-robin baseline suffers it too.
func RunCorrelatedFaultStudy(servers int, gv float64, seed uint64) ([]CorrelatedFaultRow, error) {
	spec := CorrelatedFaultStudySpec(servers, gv, seed)
	sr, err := RunSpecResults(spec, BatchOptions{})
	if err != nil {
		return nil, err
	}
	cases := spec.Axes[0].Cases
	policies := []Policy{PolicyVMTTA, PolicyVMTWA}
	rows := make([]CorrelatedFaultRow, 0, len(cases)*len(policies))
	for ci, cs := range cases {
		for pi, pol := range policies {
			i := ci*len(policies) + pi
			res := sr.Results[i]
			red, err := cooling.PeakReductionPct(sr.BaselineFor(i).CoolingLoadW, res.CoolingLoadW)
			if err != nil {
				return nil, err
			}
			row := CorrelatedFaultRow{
				Correlation:        cs.Name,
				Policy:             pol,
				ReductionPct:       red,
				Crashes:            res.FaultCrashes,
				DomainTrips:        res.DomainTrips,
				LostJobs:           res.LostJobs,
				ReportsQuarantined: res.ReportsQuarantined,
			}
			if res.TaskArrivals > 0 {
				row.DropPct = float64(res.TaskDrops) / float64(res.TaskArrivals) * 100
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// MaterialSweepPoint is one sample of a wax design-space sweep.
type MaterialSweepPoint struct {
	// Value is the swept quantity: melting temperature (°C) or volume
	// (liters).
	Value float64
	// ReductionPct is the best VMT-TA peak reduction over the GV grid
	// at this material choice.
	ReductionPct float64
	// BestGV is the grouping value that achieved it.
	BestGV float64
}

// PMTSweep sweeps the wax's physical melting temperature — the
// purchasing decision. Commercial paraffin comes in roughly 35.7–60 °C;
// the paper buys the lowest because every degree above the achievable
// hot-group temperature strands the wax. The sweep quantifies that
// cliff: VMT retunes the GV per candidate wax, and the reduction still
// collapses once even a fully concentrated group cannot reach the
// melting point.
func PMTSweep(servers int, meltTempsC, gvGrid []float64) ([]MaterialSweepPoint, error) {
	if len(meltTempsC) == 0 || len(gvGrid) == 0 {
		return nil, fmt.Errorf("vmt: need melting temperatures and a GV grid")
	}
	return materialSweep(PMTSweepSpec(servers, meltTempsC, gvGrid), meltTempsC, gvGrid)
}

// VolumeSweep sweeps the deployed wax volume per server. The paper's
// CFD found 4.0 L fits the chassis without violating CPU limits; the
// sweep shows what more or less capacity buys — linear gains while the
// peak-window heat exceeds storage, then saturation once the wax
// outlasts the peak.
func VolumeSweep(servers int, volumesL, gvGrid []float64) ([]MaterialSweepPoint, error) {
	if len(volumesL) == 0 || len(gvGrid) == 0 {
		return nil, fmt.Errorf("vmt: need volumes and a GV grid")
	}
	return materialSweep(VolumeSweepSpec(servers, volumesL, gvGrid), volumesL, gvGrid)
}

// materialSweep executes a two-axis (value × GV) design-space spec and
// reduces it with the sweeps' shared argmax: the best reduction over
// the GV grid per swept value, computed against the baseline's peak
// cooling budget exactly as the pre-engine loops did.
func materialSweep(spec experiment.Spec, values, gvGrid []float64) ([]MaterialSweepPoint, error) {
	sr, err := RunSpecResults(spec, BatchOptions{})
	if err != nil {
		return nil, err
	}
	budget := sr.Baselines[0].PeakCoolingW()
	if budget <= 0 {
		return nil, fmt.Errorf("vmt: non-positive baseline peak")
	}
	out := make([]MaterialSweepPoint, 0, len(values))
	for vi, val := range values {
		pt := MaterialSweepPoint{Value: val, ReductionPct: -1e18}
		for gi, gv := range gvGrid {
			res := sr.Results[vi*len(gvGrid)+gi]
			red := (budget - res.PeakCoolingW()) / budget * 100
			if red > pt.ReductionPct {
				pt.ReductionPct = red
				pt.BestGV = gv
			}
		}
		out = append(out, pt)
	}
	return out, nil
}
