package vmt

import (
	"errors"
	"fmt"
	"time"

	"vmt/internal/chiller"
	"vmt/internal/cooling"
	"vmt/internal/energy"
	"vmt/internal/trace"
	"vmt/internal/zones"
)

// AblationPoint is one variant in an ablation study.
type AblationPoint struct {
	Name         string
	ReductionPct float64
}

// AblationStudy quantifies the design choices DESIGN.md calls out, all
// against one shared round-robin baseline at the given scale and GV:
//
//   - "wa": the full wax-aware policy as shipped;
//   - "wa-oracle": ground-truth wax state instead of the per-server
//     estimator — what perfect sensing would buy;
//   - "wa-budget-2%" / "wa-budget-100%": the migration budget at the
//     extremes — near-frozen handover vs unbounded churn;
//   - "ta": thermal-aware (no wax feedback at all).
func AblationStudy(servers int, gv float64) ([]AblationPoint, error) {
	spec := AblationSpec(servers, gv)
	sr, err := RunSpecResults(spec, BatchOptions{})
	if err != nil {
		// Name the failing variant, as the sequential loop used to.
		var re *RunError
		if errors.As(err, &re) && re.Index >= 1 {
			return nil, fmt.Errorf("vmt: ablation %s: %w",
				spec.Axes[0].Cases[re.Index-1].Name, re.Err)
		}
		return nil, err
	}
	baseline := sr.Baselines[0]
	out := make([]AblationPoint, 0, len(sr.Points))
	for i, p := range sr.Points {
		red, err := cooling.PeakReductionPct(baseline.CoolingLoadW, sr.Results[i].CoolingLoadW)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Name: p.Labels["variant"].(string), ReductionPct: red})
	}
	return out, nil
}

// AsymmetricTwoDay returns a trace whose second day is far hotter than
// the first (day-one peak dayOnePeak, day-two peak 0.95) — the
// "very hot peak still to come" scenario that motivates the
// wax-preserving extension.
func AsymmetricTwoDay(dayOnePeak float64) trace.Spec {
	s := trace.PaperTwoDay()
	s.PeakUtil = []float64{dayOnePeak, 0.95}
	return s
}

// PreserveStudy compares standard VMT-WA against the wax-preserving
// extension on an asymmetric trace, reporting each policy's *day-two*
// peak cooling reduction (the peak the preservation is for). The
// preserving policy sacrifices part of day one's shaving to arrive at
// day two with solid wax.
type PreserveStudy struct {
	DayOnePeakUtil   float64
	WA, Preserve     float64 // day-two peak reduction, percent
	WADay1, PresDay1 float64 // day-one peak reduction, percent
}

// RunPreserveStudy evaluates the extension at the given scale and GV.
func RunPreserveStudy(servers int, gv, dayOnePeak float64) (PreserveStudy, error) {
	tr := AsymmetricTwoDay(dayOnePeak)
	run := func(policy Policy) (*Result, error) {
		cfg := Scenario(servers, policy, gv)
		cfg.Trace = tr
		return Run(cfg)
	}
	baseline, err := run(PolicyRoundRobin)
	if err != nil {
		return PreserveStudy{}, err
	}
	wa, err := run(PolicyVMTWA)
	if err != nil {
		return PreserveStudy{}, err
	}
	pres, err := run(PolicyVMTPreserve)
	if err != nil {
		return PreserveStudy{}, err
	}
	study := PreserveStudy{DayOnePeakUtil: dayOnePeak}
	study.WADay1, study.WA = dayPeakReductions(baseline, wa)
	study.PresDay1, study.Preserve = dayPeakReductions(baseline, pres)
	return study, nil
}

// dayPeakReductions splits the series at hour 29 (the inter-day
// trough) and returns the per-day peak reductions.
func dayPeakReductions(baseline, variant *Result) (day1, day2 float64) {
	split := int((29 * time.Hour) / baseline.Config.Step)
	reduce := func(lo, hi int) float64 {
		var bPeak, vPeak float64
		for i := lo; i < hi && i < baseline.CoolingLoadW.Len(); i++ {
			if b := baseline.CoolingLoadW.Values[i]; b > bPeak {
				bPeak = b
			}
			if v := variant.CoolingLoadW.Values[i]; v > vPeak {
				vPeak = v
			}
		}
		if bPeak <= 0 {
			return 0
		}
		return (bPeak - vPeak) / bPeak * 100
	}
	return reduce(0, split), reduce(split, baseline.CoolingLoadW.Len())
}

// EnergyCostStudy prices the cooling electricity of round robin versus
// VMT under a time-of-use tariff — the paper's closing observation
// that temporally shifting cooling energy also buys cheaper kWh.
type EnergyCostStudy struct {
	// PeakShareRR and PeakShareVMT are the fractions of cooling energy
	// burned inside the expensive tariff window.
	PeakShareRR, PeakShareVMT float64
	// BillRR and BillVMT are the totals (USD over the trace).
	BillRR, BillVMT float64
	// SavingsPct is the relative energy-cost saving from VMT.
	SavingsPct float64
}

// RunEnergyCostStudy simulates both policies and prices their cooling
// loads through a plant sized for the baseline under the tariff.
func RunEnergyCostStudy(servers int, gv float64, tariff energy.Tariff) (EnergyCostStudy, error) {
	runs, err := RunMany([]Config{
		BaselineScenario(servers),
		Scenario(servers, PolicyVMTWA, gv),
	})
	if err != nil {
		return EnergyCostStudy{}, err
	}
	plant, err := chiller.SizeForPeak(runs[0].CoolingLoadW, 0.05)
	if err != nil {
		return EnergyCostStudy{}, err
	}
	cmp, err := energy.Compare(runs[0].CoolingLoadW, runs[1].CoolingLoadW, plant, tariff)
	if err != nil {
		return EnergyCostStudy{}, err
	}
	return EnergyCostStudy{
		PeakShareRR:  cmp.Baseline.PeakWindowShare,
		PeakShareVMT: cmp.Variant.PeakWindowShare,
		BillRR:       cmp.Baseline.TotalUSD,
		BillVMT:      cmp.Variant.TotalUSD,
		SavingsPct:   cmp.SavingsPct,
	}, nil
}

// ZonePlacementStudy quantifies the paper's spatial parenthetical: the
// hot group "can be distributed throughout the datacenter" — and must
// be, because each zone's CRAC is provisioned for its own peak. The
// study runs VMT, converts the per-server cooling loads into per-zone
// CRAC loads under striped and clustered layouts, and reports the
// worst peak-to-mean imbalance each layout inflicts.
type ZonePlacementStudy struct {
	Zones int
	// StripedPeakToMean and ClusteredPeakToMean are the worst
	// per-sample zone imbalances (1.0 = perfectly balanced).
	StripedPeakToMean, ClusteredPeakToMean float64
	// CRACOversizePct is the extra per-zone cooling capacity the
	// clustered layout demands relative to striped.
	CRACOversizePct float64
}

// RunZonePlacementStudy evaluates both layouts on a VMT-TA run.
func RunZonePlacementStudy(servers, zoneCount int, gv float64) (ZonePlacementStudy, error) {
	cfg := Scenario(servers, PolicyVMTTA, gv)
	cfg.RecordGrids = true
	res, err := Run(cfg)
	if err != nil {
		return ZonePlacementStudy{}, err
	}
	// Per-server cooling load ≈ KAir×(Tair−Tinlet); reuse the recorded
	// air-temperature grid.
	kAir := res.Config.Server.Value().AirConductanceWPerK
	inlet := res.Config.InletTempC.Value()
	loads := make([][]float64, len(res.AirTempGrid))
	for i, snap := range res.AirTempGrid {
		row := make([]float64, len(snap))
		for j, tC := range snap {
			row[j] = kAir * (tC - inlet)
		}
		loads[i] = row
	}
	striped, err := zones.Striped(servers, zoneCount)
	if err != nil {
		return ZonePlacementStudy{}, err
	}
	clustered, err := zones.Clustered(servers, zoneCount)
	if err != nil {
		return ZonePlacementStudy{}, err
	}
	sIm, err := striped.WorstImbalance(loads)
	if err != nil {
		return ZonePlacementStudy{}, err
	}
	cIm, err := clustered.WorstImbalance(loads)
	if err != nil {
		return ZonePlacementStudy{}, err
	}
	return ZonePlacementStudy{
		Zones:               zoneCount,
		StripedPeakToMean:   sIm.PeakToMean,
		ClusteredPeakToMean: cIm.PeakToMean,
		CRACOversizePct:     (cIm.PeakToMean/sIm.PeakToMean - 1) * 100,
	}, nil
}
