package vmt

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"vmt/internal/fault"
	"vmt/internal/telemetry"
	"vmt/internal/topology"
)

// testFaultPlan is the shared exercise plan: a scheduled crash with
// repair, stochastic crashes, and one of each sensor fault kind.
func testFaultPlan() *fault.Plan {
	return &fault.Plan{
		Seed:       7,
		Crashes:    []fault.Crash{{Server: 1, AtMin: 120, RepairAfterMin: 180}},
		Stochastic: &fault.Stochastic{RatePerHour: 0.05, RepairAfterMin: 90},
		Sensors: []fault.SensorFault{
			{Server: 0, Kind: fault.KindDropout, StartMin: 200, EndMin: 400},
			{Server: 2, Kind: fault.KindNoise, StartMin: 0, StdevC: 0.3},
			{Server: 3, Kind: fault.KindStuck, StartMin: 100, EndMin: 300, ValueC: 20},
			{Server: 4, Kind: fault.KindDrift, StartMin: 0, DriftCPerHour: 0.5},
		},
	}
}

func faultScenario(policy Policy) Config {
	cfg := Scenario(8, policy, 22)
	cfg.Trace = smallTrace()
	cfg.JobStream = true
	cfg.Faults = testFaultPlan()
	return cfg
}

// correlatedFaultPlan exercises every correlated and Byzantine fault
// path at once: a scheduled rack trip, a cooling-zone derate, sparse
// stochastic rack trips, and lying utilization and melt reports.
func correlatedFaultPlan() *fault.Plan {
	return &fault.Plan{
		Seed:     11,
		Topology: &topology.Spec{ServersPerRack: 3, RacksPerRow: 2, RowsPerZone: 2},
		Domains: []fault.DomainFault{
			{Kind: topology.DomainRack, Index: 1, AtMin: 240, RepairAfterMin: 180},
			{Kind: topology.DomainZone, Index: 0, Mode: fault.ModeDerate, AtMin: 600, RepairAfterMin: 120, DerateInletDeltaC: 5},
		},
		StochasticDomains: &fault.StochasticDomains{Kind: topology.DomainRack, RatePerHour: 0.02, RepairAfterMin: 120},
		Byzantine: []fault.ByzantineFault{
			{Server: 0, Kind: fault.ByzUtil, StartMin: 60, Bias: -0.5, Jitter: 0.02},
			{Server: 2, Kind: fault.ByzMelt, StartMin: 120, EndMin: 600, Bias: 0.6, Jitter: 0.05},
		},
	}
}

func correlatedScenario(policy Policy) Config {
	cfg := Scenario(8, policy, 22)
	cfg.Trace = smallTrace()
	cfg.JobStream = true
	cfg.Faults = correlatedFaultPlan()
	return cfg
}

func TestConfigValidateRejectsBadFaultPlan(t *testing.T) {
	cfg := faultScenario(PolicyVMTWA)
	cfg.Faults = &fault.Plan{Stochastic: &fault.Stochastic{RatePerHour: -1}}
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative failure rate should fail validation")
	}
	cfg.Faults = &fault.Plan{Crashes: []fault.Crash{{Server: 99, AtMin: 1}}}
	if err := cfg.Validate(); err == nil {
		t.Fatal("out-of-range crash server should fail validation")
	}
}

// TestFaultRunReportsTotals: the injected faults surface in the
// Result and something actually happened.
func TestFaultRunReportsTotals(t *testing.T) {
	res, err := Run(faultScenario(PolicyVMTWA))
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultCrashes == 0 {
		t.Error("scheduled crash at 120 min never landed")
	}
	if res.FaultRepairs == 0 {
		t.Error("no repairs completed over a full day with 90-180 min downtimes")
	}
	if res.EvacuatedJobs == 0 {
		t.Error("crashes on a loaded cluster should evacuate jobs")
	}
}

// TestFaultRunBitIdenticalAcrossWorkersAndCache is the determinism
// acceptance bar: the same Config+Plan produces bit-identical series
// for PhysicsWorkers 1/2/8 and with the run cache on or off.
func TestFaultRunBitIdenticalAcrossWorkersAndCache(t *testing.T) {
	for _, policy := range []Policy{PolicyVMTTA, PolicyVMTWA} {
		base := faultScenario(policy)
		var ref *Result
		for _, workers := range []int{1, 2, 8} {
			cfg := base
			cfg.PhysicsWorkers = workers
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", policy, workers, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if d := identicalSeries(ref, res); d != "" {
				t.Fatalf("%s workers=%d: %s", policy, workers, d)
			}
			if res.FaultCrashes != ref.FaultCrashes || res.EvacuatedJobs != ref.EvacuatedJobs ||
				res.FaultRepairs != ref.FaultRepairs || res.LostJobs != ref.LostJobs {
				t.Fatalf("%s workers=%d: fault totals diverged", policy, workers)
			}
		}

		// Cache off vs on (plus the cached replay) must match too.
		cache := RunCache()
		cache.Reset()
		cache.SetEnabled(false)
		uncached, err := RunManyCached([]Config{base}, BatchOptions{})
		cache.SetEnabled(true)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := RunManyCached([]Config{base}, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		replay, err := RunManyCached([]Config{base}, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if d := identicalSeries(ref, uncached[0]); d != "" {
			t.Fatalf("%s cache off: %s", policy, d)
		}
		if d := identicalSeries(ref, fresh[0]); d != "" {
			t.Fatalf("%s cache miss: %s", policy, d)
		}
		if replay[0] != fresh[0] {
			t.Fatalf("%s: replay should hand back the cached result", policy)
		}
		cache.Reset()
	}
}

// TestEmptyFaultPlanMatchesNil: a present-but-empty plan is the
// fault-free run, bit for bit.
func TestEmptyFaultPlanMatchesNil(t *testing.T) {
	cfg := Scenario(5, PolicyVMTWA, 22)
	cfg.Trace = smallTrace()
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &fault.Plan{Seed: 99}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := identicalSeries(ref, res); d != "" {
		t.Fatalf("empty plan changed the run: %s", d)
	}
	if res.FaultCrashes != 0 || res.EvacuatedJobs != 0 {
		t.Fatal("empty plan reported fault totals")
	}
}

// TestWaxAwareDegradesOnSensorDropout: a dropout longer than
// DefaultMaxEstimateAge makes VMT-WA fall back to thermal-aware
// placement for that server, counted on sched_estimate_fallbacks.
func TestWaxAwareDegradesOnSensorDropout(t *testing.T) {
	cfg := Scenario(6, PolicyVMTWA, 22)
	cfg.Trace = smallTrace()
	cfg.Faults = &fault.Plan{
		Sensors: []fault.SensorFault{{Server: 0, Kind: fault.KindDropout, StartMin: 60}},
	}
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("sched_estimate_fallbacks").Value(); got == 0 {
		t.Fatal("an open-ended dropout should trigger at least one estimate fallback")
	}
}

// TestFaultTelemetryCounters: the injector's counters land in the
// run's registry.
func TestFaultTelemetryCounters(t *testing.T) {
	cfg := faultScenario(PolicyVMTTA)
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("fault_injected_crashes").Value(); got != res.FaultCrashes {
		t.Errorf("fault_injected_crashes = %d, Result says %d", got, res.FaultCrashes)
	}
	if got := reg.Counter("fault_evacuated_jobs").Value(); got != res.EvacuatedJobs {
		t.Errorf("fault_evacuated_jobs = %d, Result says %d", got, res.EvacuatedJobs)
	}
	if got := reg.Counter("sched_migrations").Value(); got < res.EvacuatedJobs {
		t.Errorf("sched_migrations = %d, want at least the %d evacuations", got, res.EvacuatedJobs)
	}
}

// TestCorrelatedFaultRunBitIdentical extends the determinism
// acceptance bar to the correlated and Byzantine fault machinery: the
// same Config and plan — rack trips, zone derates, stochastic domain
// draws, lying reports, quarantine decisions and all — produce
// bit-identical series for PhysicsWorkers 1/2/8 and with the run
// cache off, missed, and replayed.
func TestCorrelatedFaultRunBitIdentical(t *testing.T) {
	for _, policy := range []Policy{PolicyVMTTA, PolicyVMTWA} {
		base := correlatedScenario(policy)
		var ref *Result
		for _, workers := range []int{1, 2, 8} {
			cfg := base
			cfg.PhysicsWorkers = workers
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", policy, workers, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if d := identicalSeries(ref, res); d != "" {
				t.Fatalf("%s workers=%d: %s", policy, workers, d)
			}
			if res.DomainTrips != ref.DomainTrips || res.ReportsQuarantined != ref.ReportsQuarantined ||
				res.FaultCrashes != ref.FaultCrashes || res.LostJobs != ref.LostJobs {
				t.Fatalf("%s workers=%d: correlated fault totals diverged", policy, workers)
			}
		}
		if ref.DomainTrips == 0 {
			t.Fatalf("%s: the scheduled rack trip at 240 min never landed", policy)
		}

		cache := RunCache()
		cache.Reset()
		cache.SetEnabled(false)
		uncached, err := RunManyCached([]Config{base}, BatchOptions{})
		cache.SetEnabled(true)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := RunManyCached([]Config{base}, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		replay, err := RunManyCached([]Config{base}, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if d := identicalSeries(ref, uncached[0]); d != "" {
			t.Fatalf("%s cache off: %s", policy, d)
		}
		if d := identicalSeries(ref, fresh[0]); d != "" {
			t.Fatalf("%s cache miss: %s", policy, d)
		}
		if replay[0] != fresh[0] {
			t.Fatalf("%s: replay should hand back the cached result", policy)
		}
		cache.Reset()
	}
}

// TestCorrelatedFaultTelemetryCounters: the domain-trip, quarantine,
// and load-shedding counters all fire under the correlated plan and
// agree with the Result totals.
func TestCorrelatedFaultTelemetryCounters(t *testing.T) {
	cfg := correlatedScenario(PolicyVMTWA)
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("fault_domain_trips").Value(); got == 0 || got != res.DomainTrips {
		t.Errorf("fault_domain_trips = %d, Result says %d (want both > 0)", got, res.DomainTrips)
	}
	if got := reg.Counter("sched_reports_quarantined").Value(); got == 0 || got != res.ReportsQuarantined {
		t.Errorf("sched_reports_quarantined = %d, Result says %d (want both > 0)", got, res.ReportsQuarantined)
	}
	if reg.Counter("sched_jobs_shed").Value() == 0 {
		t.Error("losing a rack of 3 servers out of 8 should shed stream load")
	}
}

// TestCorrelatedFaultFreeRunIdentical: a plan that declares topology
// but no faults is the fault-free run bit for bit — geometry alone
// must not perturb anything.
func TestCorrelatedFaultFreeRunIdentical(t *testing.T) {
	cfg := Scenario(6, PolicyVMTWA, 22)
	cfg.Trace = smallTrace()
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &fault.Plan{
		Seed:     3,
		Topology: &topology.Spec{ServersPerRack: 2, RacksPerRow: 3, RowsPerZone: 1},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := identicalSeries(ref, res); d != "" {
		t.Fatalf("topology-only plan changed the run: %s", d)
	}
	if res.DomainTrips != 0 || res.ReportsQuarantined != 0 {
		t.Fatal("topology-only plan reported fault totals")
	}
}

// panicTracer panics on the first span of the run it is attached to.
type panicTracer struct{}

func (panicTracer) Emit(telemetry.SpanEvent) { panic("tracer exploded") }

// cancelTracer cancels a shared context the first time its run emits.
type cancelTracer struct{ cancel context.CancelFunc }

func (c cancelTracer) Emit(telemetry.SpanEvent) { c.cancel() }

// slowTracer stretches its run's wall time without touching results.
type slowTracer struct{ d time.Duration }

func (s slowTracer) Emit(telemetry.SpanEvent) { time.Sleep(s.d) }

// TestRunManyPanicIsolation: a panicking run becomes an indexed
// *RunError carrying the stack; its siblings complete.
func TestRunManyPanicIsolation(t *testing.T) {
	mk := func() Config {
		cfg := BaselineScenario(3)
		cfg.Trace = smallTrace()
		return cfg
	}
	cfgs := []Config{mk(), mk(), mk()}
	cfgs[1].Tracer = panicTracer{}
	results, err := RunMany(cfgs)
	var re *RunError
	if !errors.As(err, &re) || re.Index != 1 {
		t.Fatalf("err = %v, want *RunError at index 1", err)
	}
	if !strings.Contains(re.Err.Error(), "panicked") || !strings.Contains(re.Err.Error(), "tracer exploded") {
		t.Fatalf("error should carry the recovered panic, got: %v", re.Err)
	}
	if results[0] == nil || results[2] == nil {
		t.Fatal("siblings of the panicking run should complete")
	}
	if results[1] != nil {
		t.Fatal("the panicking run should have no result")
	}
}

// TestRunManyCancellation: cancelling the batch context mid-flight
// yields clean partial progress — completed runs keep results, the
// cancelled and never-started runs fail with ctx.Err(), and no worker
// goroutines are left behind.
func TestRunManyCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mk := func() Config {
		cfg := BaselineScenario(3)
		cfg.Trace = smallTrace()
		return cfg
	}
	// Sequential dispatch: run 0 completes, run 1 cancels the batch at
	// its first span, run 2 is never dispatched.
	cfgs := []Config{mk(), mk(), mk()}
	cfgs[1].Tracer = cancelTracer{cancel: cancel}
	results, err := RunManyOpts(cfgs, BatchOptions{Workers: 1, Context: ctx})
	var re *RunError
	if !errors.As(err, &re) || re.Index != 1 {
		t.Fatalf("err = %v, want *RunError at index 1", err)
	}
	if !errors.Is(re.Err, context.Canceled) {
		t.Fatalf("run 1 should fail with context.Canceled, got %v", re.Err)
	}
	if results[0] == nil {
		t.Fatal("run 0 completed before the cancel and should keep its result")
	}
	if results[1] != nil || results[2] != nil {
		t.Fatal("cancelled runs should have no results")
	}
	// No goroutine leak: the workers drain and exit.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestRunManyTimeout: a hanging run is cut off with
// context.DeadlineExceeded at its index while siblings complete.
func TestRunManyTimeout(t *testing.T) {
	mk := func() Config {
		cfg := BaselineScenario(3)
		cfg.Trace = smallTrace()
		return cfg
	}
	cfgs := []Config{mk(), mk()}
	cfgs[0].Tracer = slowTracer{d: 20 * time.Millisecond}
	results, err := RunManyOpts(cfgs, BatchOptions{Timeout: 100 * time.Millisecond})
	var re *RunError
	if !errors.As(err, &re) || re.Index != 0 {
		t.Fatalf("err = %v, want *RunError at index 0", err)
	}
	if !errors.Is(re.Err, context.DeadlineExceeded) {
		t.Fatalf("slow run should time out, got %v", re.Err)
	}
	if results[1] == nil {
		t.Fatal("the fast sibling should complete")
	}
}

// TestCacheCorruptionQuarantine: a cached result mutated after Commit
// is detected on the next read, quarantined, recomputed, and counted —
// never silently returned.
func TestCacheCorruptionQuarantine(t *testing.T) {
	cache := RunCache()
	cache.Reset()
	defer cache.Reset()
	cfg := BaselineScenario(4)
	cfg.Trace = smallTrace()
	reg := telemetry.NewRegistry()
	first, err := RunManyCached([]Config{cfg}, BatchOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	good := first[0].CoolingLoadW.Values[0]
	// Scribble on the shared cached result.
	first[0].CoolingLoadW.Values[0] = good + 1
	second, err := RunManyCached([]Config{cfg}, BatchOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if second[0] == first[0] {
		t.Fatal("the corrupted entry was handed back instead of recomputed")
	}
	if got := second[0].CoolingLoadW.Values[0]; math.Float64bits(got) != math.Float64bits(good) {
		t.Fatalf("recomputed value %v, want the original %v", got, good)
	}
	if got := cache.Corruptions(); got != 1 {
		t.Fatalf("Corruptions() = %d, want 1", got)
	}
	if got := reg.Counter("experiment_cache_corruptions").Value(); got != 1 {
		t.Fatalf("experiment_cache_corruptions = %d, want 1", got)
	}
	// The recomputed entry replaced the quarantined one.
	third, err := RunManyCached([]Config{cfg}, BatchOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if third[0] != second[0] {
		t.Fatal("the recomputed result should be cached again")
	}
}
