package vmt

import (
	"fmt"
	"time"

	"vmt/internal/forecast"
	"vmt/internal/trace"
)

// GVChange schedules a grouping-value retune at a simulation time
// (applies to the VMT policies; see Config.GVSchedule).
type GVChange struct {
	At time.Duration
	GV float64
}

// AdaptiveGVStudy closes the operational loop the paper sketches in
// Section V-C: each evening, forecast tomorrow's load from history,
// pick tomorrow's GV by simulating the forecast, and retune. The study
// compares that day-ahead adaptive operation against the best single
// static GV over a multi-day trace with day-to-day peak variation.
type AdaptiveGVStudy struct {
	// DayPeaks is the realized per-day peak utilization.
	DayPeaks []float64
	// ChosenGVs is the adaptive controller's per-day choice.
	ChosenGVs []float64
	// StaticGV is the best fixed value found over the whole trace.
	StaticGV float64
	// AdaptiveDaily and StaticDaily are per-day peak cooling
	// reductions vs round robin (percent).
	AdaptiveDaily, StaticDaily []float64
	// MeanAdaptivePct and MeanStaticPct average the daily reductions —
	// the day-to-day benefit (off-peak energy pricing, green windows)
	// the paper's closing discussion points at.
	MeanAdaptivePct, MeanStaticPct float64
	// ForecastMAE is the mean absolute error of the day-ahead
	// forecasts actually used.
	ForecastMAE float64
}

// weekSpec builds a multi-day paper-style trace with the given daily
// peaks.
func weekSpec(dayPeaks []float64) trace.Spec {
	s := trace.PaperTwoDay()
	s.Days = len(dayPeaks)
	s.PeakUtil = append([]float64(nil), dayPeaks...)
	s.PeakHours = []float64{20}
	return s
}

// RunAdaptiveGVStudy runs the closed loop at the given cluster size
// over dayPeaks, choosing GVs from gvGrid. tuneServers sizes the
// cheaper single-day tuning simulations (e.g. 50).
//
// The controller embodies the paper's Section V-C risk guidance: it
// tunes with the wax-aware policy (robust when the GV lands low) and
// inflates the forecast peak by a safety margin before tuning, because
// a day that comes in hotter than forecast punishes an undersized hot
// group far more than a cooler day punishes an oversized one.
func RunAdaptiveGVStudy(servers, tuneServers int, dayPeaks, gvGrid []float64) (AdaptiveGVStudy, error) {
	if len(dayPeaks) < 2 {
		return AdaptiveGVStudy{}, fmt.Errorf("vmt: need at least two days")
	}
	if len(gvGrid) == 0 {
		return AdaptiveGVStudy{}, fmt.Errorf("vmt: need a GV grid")
	}
	spec := weekSpec(dayPeaks)
	realized, err := trace.Generate(spec, time.Minute)
	if err != nil {
		return AdaptiveGVStudy{}, err
	}
	study := AdaptiveGVStudy{DayPeaks: append([]float64(nil), dayPeaks...)}

	// Day-ahead loop: observe day d, choose GV for day d+1.
	fc, err := forecast.New(time.Minute, 0.5)
	if err != nil {
		return AdaptiveGVStudy{}, err
	}
	const minutesPerDay = 24 * 60
	vals := realized.Values()
	chosen := make([]float64, len(dayPeaks))
	chosen[0] = gvGrid[len(gvGrid)/2] // no history yet: mid-grid default
	var maeSum float64
	maeCount := 0
	for d := 1; d < len(dayPeaks); d++ {
		if err := fc.ObserveDay(vals[(d-1)*minutesPerDay : d*minutesPerDay]); err != nil {
			return AdaptiveGVStudy{}, err
		}
		pred, err := fc.PredictDay()
		if err != nil {
			return AdaptiveGVStudy{}, err
		}
		end := (d + 1) * minutesPerDay
		if end > len(vals) {
			end = len(vals)
		}
		mae, err := forecast.MAE(pred[:end-d*minutesPerDay], vals[d*minutesPerDay:end])
		if err != nil {
			return AdaptiveGVStudy{}, err
		}
		maeSum += mae
		maeCount++
		// Risk margin: tune for a day up to 10% hotter than forecast.
		inflated := make([]float64, len(pred))
		for i, v := range pred {
			inflated[i] = v * 1.10
			if inflated[i] > 1 {
				inflated[i] = 1
			}
		}
		gv, err := tuneGVOnTrace(tuneServers, inflated, gvGrid)
		if err != nil {
			return AdaptiveGVStudy{}, err
		}
		chosen[d] = gv
	}
	study.ChosenGVs = chosen
	study.ForecastMAE = maeSum / float64(maeCount)

	// Static reference: the best single GV over the full trace.
	staticGV, err := bestStaticGV(servers, spec, gvGrid)
	if err != nil {
		return AdaptiveGVStudy{}, err
	}
	study.StaticGV = staticGV

	// Full runs: round robin, adaptive schedule, static.
	base := BaselineScenario(servers)
	base.Trace = spec
	adaptive := Scenario(servers, PolicyVMTWA, chosen[0])
	adaptive.Trace = spec
	for d := 1; d < len(chosen); d++ {
		adaptive.GVSchedule = append(adaptive.GVSchedule,
			GVChange{At: time.Duration(d) * 24 * time.Hour, GV: chosen[d]})
	}
	static := Scenario(servers, PolicyVMTWA, staticGV)
	static.Trace = spec
	// Cached batch: the round-robin base and the static winner are
	// exactly the configurations bestStaticGV just ran, so only the
	// adaptive schedule simulates here.
	runs, err := RunManyCached([]Config{base, adaptive, static}, BatchOptions{})
	if err != nil {
		return AdaptiveGVStudy{}, err
	}
	study.AdaptiveDaily = dailyPeakReductions(runs[0], runs[1], len(dayPeaks))
	study.StaticDaily = dailyPeakReductions(runs[0], runs[2], len(dayPeaks))
	for d := range study.AdaptiveDaily {
		study.MeanAdaptivePct += study.AdaptiveDaily[d]
		study.MeanStaticPct += study.StaticDaily[d]
	}
	study.MeanAdaptivePct /= float64(len(study.AdaptiveDaily))
	study.MeanStaticPct /= float64(len(study.StaticDaily))
	return study, nil
}

// tuneGVOnTrace picks the grid GV with the best peak reduction on a
// one-day forecast, using a smaller tuning cluster for speed.
func tuneGVOnTrace(servers int, dayUtil []float64, gvGrid []float64) (float64, error) {
	if len(gvGrid) == 0 {
		return 0, fmt.Errorf("vmt: need a GV grid")
	}
	sr, err := RunSpecResults(tuneGVSpec(servers, dayUtil, gvGrid), BatchOptions{})
	if err != nil {
		return 0, err
	}
	return argmaxGV(sr, gvGrid), nil
}

// bestStaticGV sweeps the grid over the full multi-day trace.
func bestStaticGV(servers int, spec trace.Spec, gvGrid []float64) (float64, error) {
	sr, err := RunSpecResults(staticGVSpec(servers, spec, gvGrid), BatchOptions{})
	if err != nil {
		return 0, err
	}
	return argmaxGV(sr, gvGrid), nil
}

// argmaxGV reduces a single-axis GV spec run with the tuning loops'
// original argmax: the GV whose run shaves the most absolute watts off
// the baseline peak (first on ties, -1e18 floor).
func argmaxGV(sr *SpecRun, gvGrid []float64) float64 {
	budget := sr.Baselines[0].PeakCoolingW()
	bestGV, bestRed := gvGrid[0], -1e18
	for i, gv := range gvGrid {
		red := budget - sr.Results[i].PeakCoolingW()
		if red > bestRed {
			bestGV, bestRed = gv, red
		}
	}
	return bestGV
}

// dailyPeakReductions splits both series into 24-hour windows and
// returns the per-day peak reductions (percent).
func dailyPeakReductions(baseline, variant *Result, days int) []float64 {
	perDay := int((24 * time.Hour) / baseline.Config.Step)
	out := make([]float64, 0, days)
	for d := 0; d < days; d++ {
		lo := d * perDay
		hi := lo + perDay
		if hi > baseline.CoolingLoadW.Len() {
			hi = baseline.CoolingLoadW.Len()
		}
		var bPeak, vPeak float64
		for i := lo; i < hi; i++ {
			if b := baseline.CoolingLoadW.Values[i]; b > bPeak {
				bPeak = b
			}
			if v := variant.CoolingLoadW.Values[i]; v > vPeak {
				vPeak = v
			}
		}
		if bPeak <= 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, (bPeak-vPeak)/bPeak*100)
	}
	return out
}
