package vmt

import (
	"fmt"
	"runtime"
	"sync"
)

// RunMany executes the given configurations concurrently (each run is
// itself single-threaded and independent) and returns results in input
// order. Determinism is preserved: every run produces exactly what a
// sequential Run of the same configuration would.
//
// The first error aborts the batch and is returned with its index; the
// remaining in-flight runs still complete.
func RunMany(cfgs []Config) ([]*Result, error) {
	return RunManyN(cfgs, runtime.GOMAXPROCS(0))
}

// RunManyN is RunMany with an explicit worker bound (≥1).
func RunManyN(cfgs []Config, workers int) ([]*Result, error) {
	if workers < 1 {
		return nil, fmt.Errorf("vmt: need at least one worker")
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = Run(cfgs[i])
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("vmt: run %d: %w", i, err)
		}
	}
	return results, nil
}
