package vmt

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"vmt/internal/telemetry"
)

// progressWindowRuns is the window width (in completed runs) of the
// sampler behind the progress line's rate/ETA: recent enough to track
// pace changes, wide enough to smooth worker jitter.
const progressWindowRuns = 8

// RunError reports which configuration of a batch failed. It wraps the
// underlying cause for errors.Is/As.
type RunError struct {
	// Index is the position of the failing configuration in the input
	// slice.
	Index int
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *RunError) Error() string { return fmt.Sprintf("vmt: run %d: %v", e.Index, e.Err) }

// Unwrap returns the underlying failure.
func (e *RunError) Unwrap() error { return e.Err }

// BatchOptions tunes RunManyOpts.
type BatchOptions struct {
	// Workers bounds concurrency; ≤0 selects GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives one line per completed run with
	// elapsed time and batch throughput — sweep feedback for long
	// parameter studies.
	Progress io.Writer
	// Tracer, when non-nil, is shared across the batch: every run
	// whose Config has no Tracer of its own emits into it, tagged with
	// the run's index so exported traces keep runs apart. Must be safe
	// for concurrent use (telemetry.Recorder is).
	Tracer telemetry.Tracer
	// Metrics, when non-nil, is applied to every run whose Config has
	// no registry of its own; counters aggregate across the batch.
	Metrics *telemetry.Registry
	// Stream, when non-nil, is shared across the batch: every run
	// whose Config has no Stream of its own gets a per-run fork
	// (Stream.ForRun) writing into the shared sink, so interleaved
	// window records stay separable by run index. Must be safe for
	// concurrent use (telemetry.Stream and its NDJSON sink are).
	Stream *telemetry.Stream
	// Fleet, when non-nil, is applied to every run whose Config has no
	// publisher of its own. The live view shows whichever run
	// published last — last-writer-wins is the expected semantics for
	// a batch's /fleet endpoint.
	Fleet *telemetry.FleetPublisher
	// Context, when non-nil, cancels the batch: queued runs are marked
	// with ctx.Err() without starting, in-flight runs stop at their
	// next tick, and completed indices keep their results — clean
	// partial progress, never a torn batch.
	Context context.Context
	// Timeout, when positive, bounds each run's wall time. A run that
	// exceeds it fails with context.DeadlineExceeded at its index
	// while its siblings complete normally.
	Timeout time.Duration
}

// RunMany executes the given configurations concurrently (each run is
// itself single-threaded and independent) and returns results in input
// order. Determinism is preserved: every run produces exactly what a
// sequential Run of the same configuration would.
func RunMany(cfgs []Config) ([]*Result, error) {
	return RunManyOpts(cfgs, BatchOptions{})
}

// RunManyN is RunMany with an explicit worker bound (≥1).
func RunManyN(cfgs []Config, workers int) ([]*Result, error) {
	if workers < 1 {
		return nil, fmt.Errorf("vmt: need at least one worker")
	}
	return RunManyOpts(cfgs, BatchOptions{Workers: workers})
}

// RunManyOpts is RunMany with batch options. Every configuration runs
// to completion even if another fails; the error for the
// lowest-indexed failure is returned as a *RunError carrying that
// index, and results at all successful indices are still populated —
// callers that can use partial sweeps may inspect both. A run that
// panics is isolated: the panic is recovered into that run's error
// (with the stack) and its siblings are unaffected.
func RunManyOpts(cfgs []Config, opts BatchOptions) ([]*Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))

	// runOne isolates a single run: a panic anywhere inside Run is
	// recovered into an indexed error instead of tearing down the
	// whole batch, and the optional per-run timeout is layered onto
	// the batch context.
	runOne := func(cfg Config) (res *Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("vmt: run panicked: %v\n%s", r, debug.Stack())
			}
		}()
		rctx := ctx
		if opts.Timeout > 0 {
			var cancel context.CancelFunc
			rctx, cancel = context.WithTimeout(rctx, opts.Timeout)
			defer cancel()
		}
		return RunCtx(rctx, cfg)
	}

	start := time.Now() //vmtlint:allow detrand observational: progress-line timing only
	var progressMu sync.Mutex
	done := 0
	// Per-run durations feed a windowed time-series (the same bounded
	// sampler streamed runs use), so the rate and ETA reflect the
	// recent completion pace — a sweep whose late configurations are
	// bigger than its early ones gets an honest forecast, not the
	// whole-batch average.
	durations := telemetry.NewTimeSeries("batch_run_seconds", progressWindowRuns, 4, nil)
	report := func(i int, d time.Duration) {
		if opts.Progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		durations.Observe(int64(done), d.Seconds())
		done++
		elapsed := time.Since(start) //vmtlint:allow detrand observational: progress-line timing only
		rate := float64(done) / elapsed.Seconds()
		// Prefer the last sealed window's mean run time; before one
		// seals, fall back to the batch-wide mean.
		perRun := elapsed.Seconds() / float64(done)
		if w, ok := durations.Last(); ok && w.Count > 0 {
			perRun = w.Mean
		}
		remaining := len(cfgs) - done
		eta := time.Duration(perRun * float64(remaining) / float64(workers) * float64(time.Second))
		fmt.Fprintf(opts.Progress,
			"vmt: run %d/%d done (%s, %d servers) in %v — %.2f runs/s, eta %v\n",
			done, len(cfgs), cfgs[i].Policy, cfgs[i].Servers,
			d.Round(time.Millisecond), rate, eta.Round(time.Second))
	}

	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				cfg := cfgs[i]
				if cfg.Metrics == nil {
					cfg.Metrics = opts.Metrics
				}
				// Batch workers already saturate the cores; nested
				// per-tick physics parallelism would only add
				// contention. Results are bit-identical for any
				// worker count, so this changes nothing observable.
				if cfg.PhysicsWorkers == 0 {
					cfg.PhysicsWorkers = 1
				}
				// Tag the batch tracer (or the process default) with
				// the run index so exported traces keep runs apart; a
				// per-Config tracer is the caller's own and passes
				// through untagged.
				if cfg.Tracer == nil {
					shared := opts.Tracer
					if shared == nil {
						shared = defaultObservers().Tracer
					}
					cfg.Tracer = telemetry.WithRun(shared, i)
				}
				// Same per-run tagging for window streams: fork the
				// shared stream (batch option or process default) so
				// this run's records carry its index. ForRun on nil
				// yields nil, and RunCtx then resolves defaults —
				// which is fine, because a nil default stream stays
				// nil.
				if cfg.Stream == nil {
					shared := opts.Stream
					if shared == nil {
						shared = defaultObservers().Stream
					}
					cfg.Stream = shared.ForRun(i)
				}
				if cfg.Fleet == nil {
					cfg.Fleet = opts.Fleet
				}
				runStart := time.Now() //vmtlint:allow detrand observational: progress-line timing only
				results[i], errs[i] = runOne(cfg)
				report(i, time.Since(runStart)) //vmtlint:allow detrand observational: progress-line timing only
			}
		}()
	}
feed:
	for i := range cfgs {
		select {
		case <-ctx.Done():
			// Mark every not-yet-dispatched run cancelled; in-flight
			// runs observe the same context at their next tick.
			for j := i; j < len(cfgs); j++ {
				errs[j] = ctx.Err()
			}
			break feed
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return results, &RunError{Index: i, Err: err}
		}
	}
	return results, nil
}
